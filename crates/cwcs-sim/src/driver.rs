//! Hypervisor drivers: the lowest layer that actually performs an action.
//!
//! In the original Entropy the drivers are SSH commands or Xen-API calls;
//! here the [`SimulatedXenDriver`] applies the action to the simulated
//! configuration and reports how long it took according to the duration
//! model.  A [`FailureInjector`] lets tests and robustness experiments make
//! selected actions fail, which the executor reports without corrupting the
//! configuration.

use std::collections::BTreeSet;
use std::fmt;

use std::sync::Mutex;

use cwcs_model::{Configuration, ModelError, VmId};
use cwcs_plan::Action;

use crate::durations::DurationModel;

/// Errors raised by a driver.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// The hypervisor refused or failed the operation (injected failure).
    OperationFailed {
        /// The action that failed.
        action: Action,
        /// Driver-level reason.
        reason: String,
    },
    /// The action violates the life cycle or references unknown entities.
    Model(ModelError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::OperationFailed { action, reason } => {
                write!(f, "driver failed to execute {action}: {reason}")
            }
            DriverError::Model(e) => write!(f, "driver refused the action: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<ModelError> for DriverError {
    fn from(e: ModelError) -> Self {
        DriverError::Model(e)
    }
}

/// The driver abstraction: execute one action against the cluster state and
/// report its duration in seconds.
pub trait HypervisorDriver: Send {
    /// Execute `action`, mutating `config`, and return the wall-clock
    /// duration the operation took.
    fn execute(&self, action: &Action, config: &mut Configuration) -> Result<f64, DriverError>;

    /// Short name for reports.
    fn name(&self) -> &str {
        "driver"
    }
}

/// Deterministic failure injection: actions on the listed VMs fail once.
#[derive(Debug, Default)]
pub struct FailureInjector {
    failing_vms: Mutex<BTreeSet<VmId>>,
}

impl FailureInjector {
    /// An injector that never fails anything.
    pub fn none() -> Self {
        FailureInjector::default()
    }

    /// Make the next action touching `vm` fail.
    pub fn fail_next_action_on(&self, vm: VmId) {
        self.failing_vms
            .lock()
            .expect("failing_vms mutex poisoned")
            .insert(vm);
    }

    /// Number of pending injected failures.
    pub fn pending(&self) -> usize {
        self.failing_vms
            .lock()
            .expect("failing_vms mutex poisoned")
            .len()
    }

    /// Consume a pending failure for `vm`, if any.
    fn take(&self, vm: VmId) -> bool {
        self.failing_vms
            .lock()
            .expect("failing_vms mutex poisoned")
            .remove(&vm)
    }
}

/// The simulated Xen driver: applies the action to the configuration and
/// charges the duration predicted by the [`DurationModel`].
pub struct SimulatedXenDriver {
    durations: DurationModel,
    failures: FailureInjector,
}

impl Default for SimulatedXenDriver {
    fn default() -> Self {
        SimulatedXenDriver::new(DurationModel::paper())
    }
}

impl SimulatedXenDriver {
    /// Build a driver with the given duration model and no failure injection.
    pub fn new(durations: DurationModel) -> Self {
        SimulatedXenDriver {
            durations,
            failures: FailureInjector::none(),
        }
    }

    /// Access the failure injector (to schedule failures from tests).
    pub fn failure_injector(&self) -> &FailureInjector {
        &self.failures
    }

    /// The duration model used by this driver.
    pub fn durations(&self) -> &DurationModel {
        &self.durations
    }
}

impl HypervisorDriver for SimulatedXenDriver {
    fn execute(&self, action: &Action, config: &mut Configuration) -> Result<f64, DriverError> {
        if self.failures.take(action.vm()) {
            return Err(DriverError::OperationFailed {
                action: *action,
                reason: "injected failure".to_string(),
            });
        }
        action.apply(config)?;
        Ok(self.durations.action_duration(action))
    }

    fn name(&self) -> &str {
        "simulated-xen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwcs_model::{CpuCapacity, MemoryMib, Node, NodeId, ResourceDemand, Vm};

    fn config() -> Configuration {
        let mut c = Configuration::new();
        c.add_node(Node::new(
            NodeId(0),
            CpuCapacity::cores(2),
            MemoryMib::gib(4),
        ))
        .unwrap();
        c.add_node(Node::new(
            NodeId(1),
            CpuCapacity::cores(2),
            MemoryMib::gib(4),
        ))
        .unwrap();
        c.add_vm(Vm::new(
            VmId(0),
            MemoryMib::mib(1024),
            CpuCapacity::cores(1),
        ))
        .unwrap();
        c
    }

    fn run_action() -> Action {
        Action::Run {
            vm: VmId(0),
            node: NodeId(0),
            demand: ResourceDemand::new(CpuCapacity::cores(1), MemoryMib::mib(1024)),
        }
    }

    #[test]
    fn simulated_driver_applies_and_times_actions() {
        let driver = SimulatedXenDriver::default();
        let mut c = config();
        let duration = driver.execute(&run_action(), &mut c).unwrap();
        assert_eq!(duration, 6.0);
        assert_eq!(c.host(VmId(0)).unwrap(), Some(NodeId(0)));
    }

    #[test]
    fn injected_failures_do_not_change_state() {
        let driver = SimulatedXenDriver::default();
        driver.failure_injector().fail_next_action_on(VmId(0));
        let mut c = config();
        let err = driver.execute(&run_action(), &mut c).unwrap_err();
        assert!(matches!(err, DriverError::OperationFailed { .. }));
        assert_eq!(c.state(VmId(0)).unwrap(), cwcs_model::VmState::Waiting);
        // The failure is consumed: a retry succeeds.
        assert_eq!(driver.failure_injector().pending(), 0);
        driver.execute(&run_action(), &mut c).unwrap();
        assert_eq!(c.host(VmId(0)).unwrap(), Some(NodeId(0)));
    }

    #[test]
    fn life_cycle_violations_are_model_errors() {
        let driver = SimulatedXenDriver::default();
        let mut c = config();
        let suspend = Action::Suspend {
            vm: VmId(0),
            node: NodeId(0),
            demand: ResourceDemand::new(CpuCapacity::cores(1), MemoryMib::mib(1024)),
        };
        let err = driver.execute(&suspend, &mut c).unwrap_err();
        assert!(matches!(err, DriverError::Model(_)));
    }

    #[test]
    fn driver_error_messages() {
        let err = DriverError::OperationFailed {
            action: run_action(),
            reason: "ssh timeout".to_string(),
        };
        assert!(err.to_string().contains("ssh timeout"));
    }
}
