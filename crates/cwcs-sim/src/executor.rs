//! Execution of a reconfiguration plan on the simulated cluster.
//!
//! Pools run one after the other; inside a pool every action starts at its
//! pipeline offset and runs for the duration predicted by the cluster's
//! [`DurationModel`](crate::durations::DurationModel).  The pool completes
//! when its last action completes.  While a pool runs, the busy VMs hosted on
//! the nodes touched by its actions are decelerated according to the
//! [`InterferenceModel`](crate::durations::InterferenceModel), which is how
//! the paper's measured 1.3–1.5× slow-down surfaces in the simulated
//! application completion times.

use std::collections::BTreeMap;

use cwcs_model::NodeId;
use cwcs_plan::{Action, ReconfigurationPlan};

use crate::cluster::{ClusterEvent, SimulatedCluster};
use crate::driver::{DriverError, HypervisorDriver};

/// Timing record of one executed action.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRecord {
    /// The action.
    pub action: Action,
    /// Start time relative to the beginning of the context switch, seconds.
    pub start_secs: f64,
    /// Duration of the action, seconds.
    pub duration_secs: f64,
}

impl ActionRecord {
    /// End time relative to the beginning of the context switch.
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.duration_secs
    }
}

/// Timing record of one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRecord {
    /// Start of the pool relative to the beginning of the switch.
    pub start_secs: f64,
    /// Duration of the pool (last action end minus pool start).
    pub duration_secs: f64,
    /// Actions executed by this pool.
    pub actions: Vec<ActionRecord>,
}

/// Outcome of a cluster-wide context switch.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Total duration of the switch, in seconds (the Y axis of Figure 11).
    pub duration_secs: f64,
    /// Per-pool breakdown.
    pub pools: Vec<PoolRecord>,
    /// Actions that failed (with failure injection) and were skipped.
    pub failed_actions: Vec<Action>,
    /// Vjobs that completed while the switch was running.
    pub completed_vjobs: Vec<ClusterEvent>,
}

impl ExecutionReport {
    /// Number of successfully executed actions.
    pub fn executed_actions(&self) -> usize {
        self.pools.iter().map(|p| p.actions.len()).sum()
    }
}

/// Executes plans against a [`SimulatedCluster`] through a driver.
pub struct PlanExecutor<D: HypervisorDriver> {
    driver: D,
}

impl<D: HypervisorDriver> PlanExecutor<D> {
    /// Build an executor around a driver.
    pub fn new(driver: D) -> Self {
        PlanExecutor { driver }
    }

    /// Access the driver (e.g. to reach its failure injector).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Execute `plan` on `cluster`: apply every action through the driver,
    /// advance the virtual clock pool by pool, and decelerate the
    /// applications co-hosted with the operations.
    pub fn execute(
        &self,
        cluster: &mut SimulatedCluster,
        plan: &ReconfigurationPlan,
    ) -> ExecutionReport {
        let mut report = ExecutionReport {
            duration_secs: 0.0,
            pools: Vec::new(),
            failed_actions: Vec::new(),
            completed_vjobs: Vec::new(),
        };
        let interference = *cluster.interference();
        let durations = *cluster.durations();
        let mut elapsed = 0.0;

        for pool in plan.pools() {
            let pool_start = elapsed;
            let mut pool_actions = Vec::new();
            let mut pool_end = pool_start;
            // Deceleration applied to every node touched by the pool.
            let mut decelerations: BTreeMap<NodeId, f64> = BTreeMap::new();

            for planned in &pool.actions {
                let action = planned.action;
                let predicted = durations.action_duration(&action);
                match self.driver.execute(&action, cluster.configuration_mut()) {
                    Ok(duration) => {
                        let start = pool_start + planned.offset_secs as f64;
                        pool_end = pool_end.max(start + duration);
                        let factor = interference.factor_for(&action);
                        for node in Self::touched_nodes(&action) {
                            let entry = decelerations.entry(node).or_insert(1.0);
                            *entry = entry.max(factor);
                        }
                        pool_actions.push(ActionRecord {
                            action,
                            start_secs: start,
                            duration_secs: duration,
                        });
                    }
                    Err(DriverError::OperationFailed { action, .. }) => {
                        report.failed_actions.push(action);
                        // The failed operation still wasted its predicted time
                        // window on the cluster.
                        pool_end =
                            pool_end.max(pool_start + planned.offset_secs as f64 + predicted);
                    }
                    Err(DriverError::Model(_)) => {
                        report.failed_actions.push(action);
                    }
                }
            }

            let pool_duration = (pool_end - pool_start).max(0.0);
            let events = cluster.advance(pool_duration, &decelerations);
            report.completed_vjobs.extend(events);
            elapsed = pool_end;
            report.pools.push(PoolRecord {
                start_secs: pool_start,
                duration_secs: pool_duration,
                actions: pool_actions,
            });
        }

        report.duration_secs = elapsed;
        report
    }

    fn touched_nodes(action: &Action) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        if let Some((node, _)) = action.releases() {
            nodes.push(node);
        }
        if let Some((node, _)) = action.requires() {
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
        if let Action::Resume { image, .. } = action {
            if !nodes.contains(image) {
                nodes.push(*image);
            }
        }
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SimulatedXenDriver;
    use cwcs_model::{
        Configuration, CpuCapacity, MemoryMib, Node, ResourceDemand, Vjob, VjobId, Vm,
        VmAssignment, VmId,
    };
    use cwcs_plan::{Planner, Pool};
    use cwcs_workload::{VjobSpec, VmWorkProfile};

    fn demand(mem: u64) -> ResourceDemand {
        ResourceDemand::new(CpuCapacity::cores(1), MemoryMib::mib(mem))
    }

    fn cluster() -> SimulatedCluster {
        let mut config = Configuration::new();
        for i in 0..3 {
            config
                .add_node(Node::new(
                    NodeId(i),
                    CpuCapacity::cores(2),
                    MemoryMib::gib(4),
                ))
                .unwrap();
        }
        for i in 0..3 {
            config
                .add_vm(Vm::new(
                    VmId(i),
                    MemoryMib::mib(1024),
                    CpuCapacity::cores(1),
                ))
                .unwrap();
        }
        let mut cluster = SimulatedCluster::new(config);
        let vms: Vec<Vm> = (0..3)
            .map(|i| Vm::new(VmId(i), MemoryMib::mib(1024), CpuCapacity::cores(1)))
            .collect();
        let vjob = Vjob::new(VjobId(0), vms.iter().map(|v| v.id).collect(), 0);
        let profiles = vms
            .iter()
            .map(|_| VmWorkProfile::single_compute(500.0))
            .collect();
        cluster.register_vjob(&VjobSpec::new(vjob, vms, profiles));
        cluster
    }

    #[test]
    fn executes_a_run_plan_and_charges_time() {
        let mut cluster = cluster();
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
            Action::Run {
                vm: VmId(0),
                node: NodeId(0),
                demand: demand(1024),
            },
            Action::Run {
                vm: VmId(1),
                node: NodeId(1),
                demand: demand(1024),
            },
        ])]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        // Two boots in parallel: the switch lasts one boot (6 s).
        assert!((report.duration_secs - 6.0).abs() < 1e-9);
        assert_eq!(report.executed_actions(), 2);
        assert_eq!(
            cluster.configuration().host(VmId(0)).unwrap(),
            Some(NodeId(0))
        );
        assert!((cluster.clock_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn pools_are_sequential_and_offsets_respected() {
        let mut cluster = cluster();
        cluster
            .configuration_mut()
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut pool1 = Pool::from_actions(vec![Action::Suspend {
            vm: VmId(0),
            node: NodeId(0),
            demand: demand(1024),
        }]);
        pool1.actions[0].offset_secs = 2;
        let pool2 = Pool::from_actions(vec![Action::Run {
            vm: VmId(1),
            node: NodeId(0),
            demand: demand(1024),
        }]);
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![pool1, pool2]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        // Pool 1: starts at 0, suspend starts at 2 and lasts ~50 s -> ~52 s.
        // Pool 2: starts after pool 1 and lasts 6 s.
        let suspend_duration = cluster.durations().suspend_duration(
            MemoryMib::mib(1024),
            crate::durations::TransferMethod::Local,
        );
        let expected = 2.0 + suspend_duration + 6.0;
        assert!((report.duration_secs - expected).abs() < 1e-6);
        assert!(report.pools[1].start_secs > report.pools[0].duration_secs - 1e-9);
    }

    #[test]
    fn failed_actions_are_reported_and_skipped() {
        let mut cluster = cluster();
        let driver = SimulatedXenDriver::default();
        driver.failure_injector().fail_next_action_on(VmId(0));
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
            Action::Run {
                vm: VmId(0),
                node: NodeId(0),
                demand: demand(1024),
            },
            Action::Run {
                vm: VmId(1),
                node: NodeId(1),
                demand: demand(1024),
            },
        ])]);
        let executor = PlanExecutor::new(driver);
        let report = executor.execute(&mut cluster, &plan);
        assert_eq!(report.failed_actions.len(), 1);
        assert_eq!(report.executed_actions(), 1);
        // The failed VM is still waiting; the other one runs.
        assert_eq!(
            cluster.configuration().state(VmId(0)).unwrap(),
            cwcs_model::VmState::Waiting
        );
        assert_eq!(
            cluster.configuration().host(VmId(1)).unwrap(),
            Some(NodeId(1))
        );
    }

    #[test]
    fn co_hosted_vms_are_decelerated_during_operations() {
        // VM0 runs on node 0 and computes; VM1 migrates away from node 0.
        // During the migration VM0 progresses slower than wall-clock time.
        let mut cluster = cluster();
        cluster
            .configuration_mut()
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        cluster
            .configuration_mut()
            .set_assignment(VmId(1), VmAssignment::running(NodeId(0)))
            .unwrap();
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
            Action::Migrate {
                vm: VmId(1),
                from: NodeId(0),
                to: NodeId(1),
                demand: demand(1024),
            },
        ])]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        let progress = cluster.progress_of(VmId(0)).unwrap();
        assert!(
            progress < report.duration_secs - 1e-9,
            "progress {progress} must lag behind wall-clock {}",
            report.duration_secs
        );
        assert!((progress - report.duration_secs / 1.5).abs() < 1e-6);
    }

    #[test]
    fn end_to_end_with_planner() {
        // Plan a real transition with the planner and execute it.
        let mut cluster = cluster();
        cluster
            .configuration_mut()
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let source = cluster.configuration().clone();
        let mut target = source.clone();
        target
            .set_assignment(VmId(0), VmAssignment::running(NodeId(2)))
            .unwrap();
        target
            .set_assignment(VmId(1), VmAssignment::running(NodeId(1)))
            .unwrap();
        let plan = Planner::new().plan(&source, &target, &[]).unwrap();
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        assert!(report.failed_actions.is_empty());
        assert_eq!(
            cluster.configuration().host(VmId(0)).unwrap(),
            Some(NodeId(2))
        );
        assert_eq!(
            cluster.configuration().host(VmId(1)).unwrap(),
            Some(NodeId(1))
        );
        assert!(report.duration_secs > 0.0);
    }
}
