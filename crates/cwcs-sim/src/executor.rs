//! Execution of a reconfiguration plan on the simulated cluster.
//!
//! Two execution engines are available:
//!
//! * **event-driven** (the default) — the plan's pools are lowered to a
//!   per-action dependency graph ([`cwcs_plan::PlanDependencies`]) and run on
//!   a time-ordered event queue: each action starts as soon as the releases
//!   it depends on have occurred (plus its pipeline offset), interference is
//!   charged per overlapping time interval per node, and vjob completions
//!   fire at their exact virtual times.  Because the dependency edges are a
//!   subset of the pool barrier's implicit edges, the event-driven switch
//!   never lasts longer than the barrier execution of the same plan and both
//!   reach the identical final configuration;
//! * **pool-barrier** (compatibility mode) — the paper's literal reading:
//!   pools run one after the other, every action of pool N+1 waits for the
//!   slowest action of pool N, and the busy VMs hosted on the nodes touched
//!   by a pool are decelerated for the whole pool window according to the
//!   [`InterferenceModel`](crate::durations::InterferenceModel) — the
//!   paper's measured 1.3–1.5× slow-down.
//!
//! In both modes a failed action still occupies its predicted time window on
//! its nodes, so co-hosted VMs are decelerated during failed operations too.

use std::collections::BTreeMap;

use cwcs_model::NodeId;
use cwcs_plan::{Action, PlanDependencies, ReconfigurationPlan};

use crate::cluster::{ClusterEvent, SimulatedCluster};
use crate::driver::{DriverError, HypervisorDriver};
use crate::events::{
    Event, EventKind, EventQueue, ExecutionTimeline, TimelineEntry, VjobCompletion,
};

/// How the executor schedules the actions of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Event-queue execution with per-action precedence (the default).
    #[default]
    EventDriven,
    /// Sequential pools with a barrier between them (the paper's Section 4.1
    /// semantics, kept for comparisons and regression baselines).
    PoolBarrier,
}

/// Timing record of one executed action.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRecord {
    /// The action.
    pub action: Action,
    /// Start time relative to the beginning of the context switch, seconds.
    pub start_secs: f64,
    /// Duration of the action, seconds.
    pub duration_secs: f64,
}

impl ActionRecord {
    /// End time relative to the beginning of the context switch.
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.duration_secs
    }
}

/// Timing record of one pool.
///
/// Under event-driven execution the "pool" is the group of actions that came
/// from the same pool of the plan; its start is the earliest action start and
/// its duration spans to the latest action end (pools may overlap in time).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRecord {
    /// Start of the pool relative to the beginning of the switch.
    pub start_secs: f64,
    /// Duration of the pool (last action end minus pool start).
    pub duration_secs: f64,
    /// Actions executed by this pool.
    pub actions: Vec<ActionRecord>,
}

/// Outcome of a cluster-wide context switch.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Total duration of the switch, in seconds (the Y axis of Figure 11).
    pub duration_secs: f64,
    /// Per-pool breakdown.
    pub pools: Vec<PoolRecord>,
    /// Actions that failed (with failure injection) and were skipped.
    pub failed_actions: Vec<Action>,
    /// Vjobs that completed while the switch was running.
    pub completed_vjobs: Vec<ClusterEvent>,
    /// The full timeline: per-action start/end times and exact vjob
    /// completion times.
    pub timeline: ExecutionTimeline,
}

impl ExecutionReport {
    /// Number of successfully executed actions.
    pub fn executed_actions(&self) -> usize {
        self.pools.iter().map(|p| p.actions.len()).sum()
    }
}

/// Executes plans against a [`SimulatedCluster`] through a driver.
pub struct PlanExecutor<D: HypervisorDriver> {
    driver: D,
    mode: ExecutionMode,
}

impl<D: HypervisorDriver> PlanExecutor<D> {
    /// Build an executor around a driver, using the event-driven engine.
    pub fn new(driver: D) -> Self {
        PlanExecutor {
            driver,
            mode: ExecutionMode::EventDriven,
        }
    }

    /// Select the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The execution mode of this executor.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Access the driver (e.g. to reach its failure injector).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Execute `plan` on `cluster`: apply every action through the driver,
    /// advance the virtual clock, and decelerate the applications co-hosted
    /// with the operations.
    pub fn execute(
        &self,
        cluster: &mut SimulatedCluster,
        plan: &ReconfigurationPlan,
    ) -> ExecutionReport {
        match self.mode {
            ExecutionMode::EventDriven => self.execute_event_driven(cluster, plan),
            ExecutionMode::PoolBarrier => self.execute_pool_barrier(cluster, plan),
        }
    }

    /// Event-driven execution: lower the plan to a dependency graph and run
    /// it on a time-ordered event queue.
    fn execute_event_driven(
        &self,
        cluster: &mut SimulatedCluster,
        plan: &ReconfigurationPlan,
    ) -> ExecutionReport {
        let dependencies = PlanDependencies::derive(plan, cluster.configuration());
        let interference = *cluster.interference();
        let durations = *cluster.durations();
        let count = dependencies.len();

        let mut pending: Vec<usize> = Vec::with_capacity(count);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); count];
        for (index, node) in dependencies.nodes().iter().enumerate() {
            pending.push(node.deps.len());
            for &dep in &node.deps {
                dependents[dep].push(index);
            }
        }

        let mut queue = EventQueue::new();
        for (index, node) in dependencies.nodes().iter().enumerate() {
            if node.deps.is_empty() {
                queue.push(Event {
                    time_secs: node.offset_secs as f64,
                    kind: EventKind::ActionStart,
                    index,
                });
            }
        }

        let mut timeline = ExecutionTimeline::default();
        let mut failed_actions = Vec::new();
        // Actions currently occupying their time window: the nodes they touch
        // and the interference factor they impose.
        let mut in_flight: BTreeMap<usize, (Vec<NodeId>, f64)> = BTreeMap::new();
        // The per-node deceleration implied by `in_flight`, maintained
        // incrementally: per node, the multiset of in-flight factors and the
        // current max.  Rebuilding this map from scratch at every event is
        // what used to dominate the event engine's wall time at scale.
        let mut node_factors: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
        let mut decelerations: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut now = 0.0;

        while let Some(event) = queue.pop() {
            // The in-flight set is constant over [now, event.time): advance
            // the applications under the current per-node decelerations.
            now = Self::advance_exact(
                cluster,
                now,
                event.time_secs,
                &decelerations,
                &mut timeline.completions,
            );

            match event.kind {
                EventKind::ActionEnd => {
                    if let Some((nodes, factor)) = in_flight.remove(&event.index) {
                        Self::release_interference(
                            &nodes,
                            factor,
                            &mut node_factors,
                            &mut decelerations,
                        );
                    }
                    for &dependent in &dependents[event.index] {
                        pending[dependent] -= 1;
                        if pending[dependent] == 0 {
                            let offset = dependencies.nodes()[dependent].offset_secs as f64;
                            queue.push(Event {
                                time_secs: now + offset,
                                kind: EventKind::ActionStart,
                                index: dependent,
                            });
                        }
                    }
                }
                EventKind::ActionStart => {
                    let node = &dependencies.nodes()[event.index];
                    let action = node.action;
                    let predicted = durations.action_duration(&action);
                    let config = cluster.configuration_mut_for_vm(action.vm());
                    match self.driver.execute(&action, config) {
                        Ok(duration) => {
                            let nodes = Self::touched_nodes(&action);
                            let factor = interference.factor_for(&action);
                            Self::apply_interference(
                                &nodes,
                                factor,
                                &mut node_factors,
                                &mut decelerations,
                            );
                            in_flight.insert(event.index, (nodes, factor));
                            queue.push(Event {
                                time_secs: now + duration,
                                kind: EventKind::ActionEnd,
                                index: event.index,
                            });
                            timeline.entries.push(TimelineEntry {
                                action,
                                pool_index: node.pool_index,
                                start_secs: now,
                                end_secs: now + duration,
                                failed: false,
                            });
                        }
                        Err(DriverError::OperationFailed { action, .. }) => {
                            failed_actions.push(action);
                            // The failed operation still wasted its predicted
                            // window on its nodes: co-hosted VMs slow down and
                            // dependents wait for the window to clear.
                            let nodes = Self::touched_nodes(&action);
                            let factor = interference.factor_for(&action);
                            Self::apply_interference(
                                &nodes,
                                factor,
                                &mut node_factors,
                                &mut decelerations,
                            );
                            in_flight.insert(event.index, (nodes, factor));
                            queue.push(Event {
                                time_secs: now + predicted,
                                kind: EventKind::ActionEnd,
                                index: event.index,
                            });
                            timeline.entries.push(TimelineEntry {
                                action,
                                pool_index: node.pool_index,
                                start_secs: now,
                                end_secs: now + predicted,
                                failed: true,
                            });
                        }
                        Err(DriverError::Model(_)) => {
                            // The driver refused the action outright: no time
                            // is charged and dependents are released at once.
                            failed_actions.push(action);
                            queue.push(Event {
                                time_secs: now,
                                kind: EventKind::ActionEnd,
                                index: event.index,
                            });
                            timeline.entries.push(TimelineEntry {
                                action,
                                pool_index: node.pool_index,
                                start_secs: now,
                                end_secs: now,
                                failed: true,
                            });
                        }
                    }
                }
            }
        }

        timeline.duration_secs = now;
        let pools = Self::pool_records(plan, &timeline);
        let completed_vjobs = timeline
            .completions
            .iter()
            .map(|c| ClusterEvent::VjobCompleted(c.vjob))
            .collect();
        ExecutionReport {
            duration_secs: now,
            pools,
            failed_actions,
            completed_vjobs,
            timeline,
        }
    }

    /// Pool-barrier execution: the compatibility mode matching the paper's
    /// sequential-pool semantics.
    fn execute_pool_barrier(
        &self,
        cluster: &mut SimulatedCluster,
        plan: &ReconfigurationPlan,
    ) -> ExecutionReport {
        let mut report = ExecutionReport {
            duration_secs: 0.0,
            pools: Vec::new(),
            failed_actions: Vec::new(),
            completed_vjobs: Vec::new(),
            timeline: ExecutionTimeline::default(),
        };
        let interference = *cluster.interference();
        let durations = *cluster.durations();
        let mut elapsed = 0.0;

        for (pool_index, pool) in plan.pools().iter().enumerate() {
            let pool_start = elapsed;
            let mut pool_actions = Vec::new();
            let mut pool_end = pool_start;
            // Deceleration applied to every node touched by the pool.
            let mut decelerations: BTreeMap<NodeId, f64> = BTreeMap::new();

            for planned in &pool.actions {
                let action = planned.action;
                let predicted = durations.action_duration(&action);
                let start = pool_start + planned.offset_secs as f64;
                match self.driver.execute(&action, cluster.configuration_mut()) {
                    Ok(duration) => {
                        pool_end = pool_end.max(start + duration);
                        let factor = interference.factor_for(&action);
                        for node in Self::touched_nodes(&action) {
                            let entry = decelerations.entry(node).or_insert(1.0);
                            *entry = entry.max(factor);
                        }
                        pool_actions.push(ActionRecord {
                            action,
                            start_secs: start,
                            duration_secs: duration,
                        });
                        report.timeline.entries.push(TimelineEntry {
                            action,
                            pool_index,
                            start_secs: start,
                            end_secs: start + duration,
                            failed: false,
                        });
                    }
                    Err(DriverError::OperationFailed { action, .. }) => {
                        report.failed_actions.push(action);
                        // The failed operation still wasted its predicted time
                        // window on the cluster: the pool stretches and the
                        // touched nodes suffer the interference all the same.
                        pool_end = pool_end.max(start + predicted);
                        let factor = interference.factor_for(&action);
                        for node in Self::touched_nodes(&action) {
                            let entry = decelerations.entry(node).or_insert(1.0);
                            *entry = entry.max(factor);
                        }
                        report.timeline.entries.push(TimelineEntry {
                            action,
                            pool_index,
                            start_secs: start,
                            end_secs: start + predicted,
                            failed: true,
                        });
                    }
                    Err(DriverError::Model(_)) => {
                        report.failed_actions.push(action);
                        report.timeline.entries.push(TimelineEntry {
                            action,
                            pool_index,
                            start_secs: start,
                            end_secs: start,
                            failed: true,
                        });
                    }
                }
            }

            let pool_duration = (pool_end - pool_start).max(0.0);
            let events = cluster.advance(pool_duration, &decelerations);
            for event in &events {
                let ClusterEvent::VjobCompleted(id) = event;
                report.timeline.completions.push(VjobCompletion {
                    vjob: *id,
                    time_secs: pool_end,
                });
            }
            report.completed_vjobs.extend(events);
            elapsed = pool_end;
            report.pools.push(PoolRecord {
                start_secs: pool_start,
                duration_secs: pool_duration,
                actions: pool_actions,
            });
        }

        report.duration_secs = elapsed;
        report.timeline.duration_secs = elapsed;
        report
    }

    /// Advance the cluster from `now` to `target` under constant
    /// `decelerations`, firing vjob completions at their exact times.
    fn advance_exact(
        cluster: &mut SimulatedCluster,
        mut now: f64,
        target: f64,
        decelerations: &BTreeMap<NodeId, f64>,
        completions: &mut Vec<VjobCompletion>,
    ) -> f64 {
        while target - now > 1e-12 {
            let remaining = target - now;
            let horizon = cluster.next_completion_horizon_cached(decelerations);
            match horizon {
                Some(h) if h < remaining - 1e-12 => {
                    let step = h.max(0.0);
                    let events = cluster.advance(step, decelerations);
                    now += step;
                    let fired = !events.is_empty();
                    for ClusterEvent::VjobCompleted(id) in events {
                        completions.push(VjobCompletion {
                            vjob: id,
                            time_secs: now,
                        });
                    }
                    if !fired && step <= 1e-9 {
                        // Numerical guard: a degenerate horizon that fired
                        // nothing; finish the segment in one step.
                        let events = cluster.advance(target - now, decelerations);
                        now = target;
                        for ClusterEvent::VjobCompleted(id) in events {
                            completions.push(VjobCompletion {
                                vjob: id,
                                time_secs: now,
                            });
                        }
                        break;
                    }
                }
                _ => {
                    let events = cluster.advance(remaining, decelerations);
                    now = target;
                    for ClusterEvent::VjobCompleted(id) in events {
                        completions.push(VjobCompletion {
                            vjob: id,
                            time_secs: now,
                        });
                    }
                    break;
                }
            }
        }
        now
    }

    /// Record that an action imposing `factor` started on `nodes`, keeping
    /// `decelerations` equal to the per-node max over in-flight factors.
    /// Factors ≤ 1.0 (runs, stops) decelerate nothing and are not published
    /// — a no-op entry would still churn the horizon cache's fingerprint.
    fn apply_interference(
        nodes: &[NodeId],
        factor: f64,
        node_factors: &mut BTreeMap<NodeId, Vec<f64>>,
        decelerations: &mut BTreeMap<NodeId, f64>,
    ) {
        if factor <= 1.0 {
            return;
        }
        for &node in nodes {
            node_factors.entry(node).or_default().push(factor);
            let entry = decelerations.entry(node).or_insert(1.0);
            *entry = entry.max(factor);
        }
    }

    /// Undo [`PlanExecutor::apply_interference`] when the action's window
    /// ends: drop one occurrence of `factor` per node and lower the node's
    /// deceleration to the max of what remains (removing the entry when no
    /// in-flight action touches the node anymore).
    fn release_interference(
        nodes: &[NodeId],
        factor: f64,
        node_factors: &mut BTreeMap<NodeId, Vec<f64>>,
        decelerations: &mut BTreeMap<NodeId, f64>,
    ) {
        if factor <= 1.0 {
            return;
        }
        for &node in nodes {
            let Some(factors) = node_factors.get_mut(&node) else {
                continue;
            };
            if let Some(pos) = factors.iter().position(|f| *f == factor) {
                factors.swap_remove(pos);
            }
            if factors.is_empty() {
                node_factors.remove(&node);
                decelerations.remove(&node);
            } else {
                let max = factors.iter().copied().fold(1.0f64, f64::max);
                decelerations.insert(node, max);
            }
        }
    }

    /// Group the timeline entries back into per-pool records.  The records
    /// list the successful actions, but the pool bounds span failed actions'
    /// occupied windows too (matching the barrier mode, where a failed
    /// action stretches its pool).
    fn pool_records(plan: &ReconfigurationPlan, timeline: &ExecutionTimeline) -> Vec<PoolRecord> {
        plan.pools()
            .iter()
            .enumerate()
            .map(|(pool_index, _)| {
                let mut start = f64::INFINITY;
                let mut end = 0.0f64;
                let mut any = false;
                for entry in timeline.pool_entries(pool_index) {
                    any = true;
                    start = start.min(entry.start_secs);
                    end = end.max(entry.end_secs);
                }
                let start = if any { start } else { 0.0 };
                let mut actions: Vec<ActionRecord> = timeline
                    .pool_entries(pool_index)
                    .filter(|e| !e.failed)
                    .map(|e| ActionRecord {
                        action: e.action,
                        start_secs: e.start_secs,
                        duration_secs: e.duration_secs(),
                    })
                    .collect();
                actions.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs));
                PoolRecord {
                    start_secs: start,
                    duration_secs: (end - start).max(0.0),
                    actions,
                }
            })
            .collect()
    }

    fn touched_nodes(action: &Action) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        if let Some((node, _)) = action.releases() {
            nodes.push(node);
        }
        if let Some((node, _)) = action.requires() {
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
        if let Action::Resume { image, .. } = action {
            if !nodes.contains(image) {
                nodes.push(*image);
            }
        }
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SimulatedXenDriver;
    use cwcs_model::{
        Configuration, CpuCapacity, MemoryMib, Node, ResourceDemand, Vjob, VjobId, Vm,
        VmAssignment, VmId,
    };
    use cwcs_plan::{Planner, Pool};
    use cwcs_workload::{VjobSpec, VmWorkProfile};

    fn demand(mem: u64) -> ResourceDemand {
        ResourceDemand::new(CpuCapacity::cores(1), MemoryMib::mib(mem))
    }

    fn cluster() -> SimulatedCluster {
        let mut config = Configuration::new();
        for i in 0..3 {
            config
                .add_node(Node::new(
                    NodeId(i),
                    CpuCapacity::cores(2),
                    MemoryMib::gib(4),
                ))
                .unwrap();
        }
        for i in 0..3 {
            config
                .add_vm(Vm::new(
                    VmId(i),
                    MemoryMib::mib(1024),
                    CpuCapacity::cores(1),
                ))
                .unwrap();
        }
        let mut cluster = SimulatedCluster::new(config);
        let vms: Vec<Vm> = (0..3)
            .map(|i| Vm::new(VmId(i), MemoryMib::mib(1024), CpuCapacity::cores(1)))
            .collect();
        let vjob = Vjob::new(VjobId(0), vms.iter().map(|v| v.id).collect(), 0);
        let profiles = vms
            .iter()
            .map(|_| VmWorkProfile::single_compute(500.0))
            .collect();
        cluster.register_vjob(&VjobSpec::new(vjob, vms, profiles));
        cluster
    }

    #[test]
    fn executes_a_run_plan_and_charges_time() {
        let mut cluster = cluster();
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
            Action::Run {
                vm: VmId(0),
                node: NodeId(0),
                demand: demand(1024),
            },
            Action::Run {
                vm: VmId(1),
                node: NodeId(1),
                demand: demand(1024),
            },
        ])]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        assert_eq!(executor.mode(), ExecutionMode::EventDriven);
        let report = executor.execute(&mut cluster, &plan);
        // Two boots in parallel: the switch lasts one boot (6 s).
        assert!((report.duration_secs - 6.0).abs() < 1e-9);
        assert_eq!(report.executed_actions(), 2);
        assert_eq!(report.timeline.max_concurrency(), 2);
        assert_eq!(
            cluster.configuration().host(VmId(0)).unwrap(),
            Some(NodeId(0))
        );
        assert!((cluster.clock_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn pools_are_sequential_and_offsets_respected_under_the_barrier() {
        let mut cluster = cluster();
        cluster
            .configuration_mut()
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut pool1 = Pool::from_actions(vec![Action::Suspend {
            vm: VmId(0),
            node: NodeId(0),
            demand: demand(1024),
        }]);
        pool1.actions[0].offset_secs = 2;
        let pool2 = Pool::from_actions(vec![Action::Run {
            vm: VmId(1),
            node: NodeId(0),
            demand: demand(1024),
        }]);
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![pool1, pool2]);
        let executor =
            PlanExecutor::new(SimulatedXenDriver::default()).with_mode(ExecutionMode::PoolBarrier);
        let report = executor.execute(&mut cluster, &plan);
        // Pool 1: starts at 0, suspend starts at 2 and lasts ~50 s -> ~52 s.
        // Pool 2: starts after pool 1 and lasts 6 s.
        let suspend_duration = cluster.durations().suspend_duration(
            MemoryMib::mib(1024),
            crate::durations::TransferMethod::Local,
        );
        let expected = 2.0 + suspend_duration + 6.0;
        assert!((report.duration_secs - expected).abs() < 1e-6);
        assert!(report.pools[1].start_secs > report.pools[0].duration_secs - 1e-9);
    }

    #[test]
    fn event_engine_overlaps_independent_pools() {
        // Same plan as the barrier test above: the run does not need the
        // suspend's release (node 0 has room for both VMs), so the event
        // engine starts it at t=0 and the switch lasts only the suspend.
        let mut cluster = cluster();
        cluster
            .configuration_mut()
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut pool1 = Pool::from_actions(vec![Action::Suspend {
            vm: VmId(0),
            node: NodeId(0),
            demand: demand(1024),
        }]);
        pool1.actions[0].offset_secs = 2;
        let pool2 = Pool::from_actions(vec![Action::Run {
            vm: VmId(1),
            node: NodeId(0),
            demand: demand(1024),
        }]);
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![pool1, pool2]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        let suspend_duration = cluster.durations().suspend_duration(
            MemoryMib::mib(1024),
            crate::durations::TransferMethod::Local,
        );
        assert!((report.duration_secs - (2.0 + suspend_duration)).abs() < 1e-6);
        // The run started immediately, before the suspend completed.
        let run_entry = report
            .timeline
            .entries
            .iter()
            .find(|e| e.action.kind() == "run")
            .unwrap();
        assert!(run_entry.start_secs.abs() < 1e-9);
    }

    #[test]
    fn event_engine_respects_release_dependencies() {
        // VM0 fills node 0; VM1 can only run there once the suspend released
        // it.  The event engine must serialize exactly those two actions.
        let mut config = Configuration::new();
        config
            .add_node(Node::new(
                NodeId(0),
                CpuCapacity::cores(1),
                MemoryMib::gib(1),
            ))
            .unwrap();
        for i in 0..2 {
            config
                .add_vm(Vm::new(
                    VmId(i),
                    MemoryMib::mib(1024),
                    CpuCapacity::cores(1),
                ))
                .unwrap();
        }
        config
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut cluster = SimulatedCluster::new(config);
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![
            Pool::from_actions(vec![Action::Suspend {
                vm: VmId(0),
                node: NodeId(0),
                demand: demand(1024),
            }]),
            Pool::from_actions(vec![Action::Run {
                vm: VmId(1),
                node: NodeId(0),
                demand: demand(1024),
            }]),
        ]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        let suspend_duration = cluster.durations().suspend_duration(
            MemoryMib::mib(1024),
            crate::durations::TransferMethod::Local,
        );
        let run_entry = report
            .timeline
            .entries
            .iter()
            .find(|e| e.action.kind() == "run")
            .unwrap();
        assert!((run_entry.start_secs - suspend_duration).abs() < 1e-6);
        assert!((report.duration_secs - (suspend_duration + 6.0)).abs() < 1e-6);
    }

    #[test]
    fn failed_actions_are_reported_and_skipped() {
        let mut cluster = cluster();
        let driver = SimulatedXenDriver::default();
        driver.failure_injector().fail_next_action_on(VmId(0));
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
            Action::Run {
                vm: VmId(0),
                node: NodeId(0),
                demand: demand(1024),
            },
            Action::Run {
                vm: VmId(1),
                node: NodeId(1),
                demand: demand(1024),
            },
        ])]);
        let executor = PlanExecutor::new(driver);
        let report = executor.execute(&mut cluster, &plan);
        assert_eq!(report.failed_actions.len(), 1);
        assert_eq!(report.executed_actions(), 1);
        // The failed VM is still waiting; the other one runs.
        assert_eq!(
            cluster.configuration().state(VmId(0)).unwrap(),
            cwcs_model::VmState::Waiting
        );
        assert_eq!(
            cluster.configuration().host(VmId(1)).unwrap(),
            Some(NodeId(1))
        );
    }

    #[test]
    fn co_hosted_vms_are_decelerated_during_operations() {
        // VM0 runs on node 0 and computes; VM1 migrates away from node 0.
        // During the migration VM0 progresses slower than wall-clock time.
        let mut cluster = cluster();
        cluster
            .configuration_mut()
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        cluster
            .configuration_mut()
            .set_assignment(VmId(1), VmAssignment::running(NodeId(0)))
            .unwrap();
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
            Action::Migrate {
                vm: VmId(1),
                from: NodeId(0),
                to: NodeId(1),
                demand: demand(1024),
            },
        ])]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        let progress = cluster.progress_of(VmId(0)).unwrap();
        assert!(
            progress < report.duration_secs - 1e-9,
            "progress {progress} must lag behind wall-clock {}",
            report.duration_secs
        );
        assert!((progress - report.duration_secs / 1.5).abs() < 1e-6);
    }

    #[test]
    fn failed_operations_still_decelerate_co_hosted_vms() {
        // Regression: a failed migration occupies its predicted window, so
        // the VM co-hosted on the source node must slow down exactly as it
        // would during a successful migration — in both execution modes.
        for mode in [ExecutionMode::EventDriven, ExecutionMode::PoolBarrier] {
            let mut cluster = cluster();
            cluster
                .configuration_mut()
                .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
                .unwrap();
            cluster
                .configuration_mut()
                .set_assignment(VmId(1), VmAssignment::running(NodeId(0)))
                .unwrap();
            let driver = SimulatedXenDriver::default();
            driver.failure_injector().fail_next_action_on(VmId(1));
            let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
                Action::Migrate {
                    vm: VmId(1),
                    from: NodeId(0),
                    to: NodeId(1),
                    demand: demand(1024),
                },
            ])]);
            let executor = PlanExecutor::new(driver).with_mode(mode);
            let report = executor.execute(&mut cluster, &plan);
            assert_eq!(report.failed_actions.len(), 1);
            assert!(report.duration_secs > 0.0, "the window is still charged");
            let progress = cluster.progress_of(VmId(0)).unwrap();
            assert!(
                (progress - report.duration_secs / 1.5).abs() < 1e-6,
                "{mode:?}: co-hosted VM must run at 1/1.5 speed during the \
                 failed migration, progressed {progress} over {}",
                report.duration_secs
            );
        }
    }

    #[test]
    fn event_engine_fires_completions_at_exact_times() {
        // VM0 computes 30 s of work on node 1 while a long suspend of VM1
        // runs on node 0: the vjob completion must be stamped at t=30
        // exactly, in the middle of the switch.
        let mut config = Configuration::new();
        for i in 0..2 {
            config
                .add_node(Node::new(
                    NodeId(i),
                    CpuCapacity::cores(2),
                    MemoryMib::gib(4),
                ))
                .unwrap();
        }
        for i in 0..2 {
            config
                .add_vm(Vm::new(
                    VmId(i),
                    MemoryMib::mib(1024),
                    CpuCapacity::cores(1),
                ))
                .unwrap();
        }
        config
            .set_assignment(VmId(0), VmAssignment::running(NodeId(1)))
            .unwrap();
        config
            .set_assignment(VmId(1), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut cluster = SimulatedCluster::new(config);
        let vm0 = Vm::new(VmId(0), MemoryMib::mib(1024), CpuCapacity::cores(1));
        cluster.register_vjob(&VjobSpec::new(
            Vjob::new(VjobId(0), vec![VmId(0)], 0),
            vec![vm0],
            vec![VmWorkProfile::single_compute(30.0)],
        ));
        let plan = cwcs_plan::ReconfigurationPlan::from_pools(vec![Pool::from_actions(vec![
            Action::Suspend {
                vm: VmId(1),
                node: NodeId(0),
                demand: demand(1024),
            },
        ])]);
        let executor = PlanExecutor::new(SimulatedXenDriver::default());
        let report = executor.execute(&mut cluster, &plan);
        assert!(report.duration_secs > 30.0, "the suspend takes ~50 s");
        assert_eq!(report.timeline.completions.len(), 1);
        let completion = &report.timeline.completions[0];
        assert_eq!(completion.vjob, VjobId(0));
        assert!(
            (completion.time_secs - 30.0).abs() < 1e-6,
            "completion at exact event time, got {}",
            completion.time_secs
        );
    }

    #[test]
    fn end_to_end_with_planner() {
        // Plan a real transition with the planner and execute it with both
        // engines: identical final configuration, event never slower.
        for mode in [ExecutionMode::EventDriven, ExecutionMode::PoolBarrier] {
            let mut cluster = cluster();
            cluster
                .configuration_mut()
                .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
                .unwrap();
            let source = cluster.configuration().clone();
            let mut target = source.clone();
            target
                .set_assignment(VmId(0), VmAssignment::running(NodeId(2)))
                .unwrap();
            target
                .set_assignment(VmId(1), VmAssignment::running(NodeId(1)))
                .unwrap();
            let plan = Planner::new().plan(&source, &target, &[]).unwrap();
            let executor = PlanExecutor::new(SimulatedXenDriver::default()).with_mode(mode);
            let report = executor.execute(&mut cluster, &plan);
            assert!(report.failed_actions.is_empty());
            assert_eq!(
                cluster.configuration().host(VmId(0)).unwrap(),
                Some(NodeId(2))
            );
            assert_eq!(
                cluster.configuration().host(VmId(1)).unwrap(),
                Some(NodeId(1))
            );
            assert!(report.duration_secs > 0.0);
        }
    }
}
