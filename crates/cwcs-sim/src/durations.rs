//! Action durations and interference, calibrated on Section 2.3 / Figure 3.
//!
//! The paper measures, on 2.1 GHz Core 2 Duo nodes with a gigabit network:
//!
//! * booting a VM ≈ 6 s and a clean shutdown ≈ 25 s, both independent of the
//!   VM memory size;
//! * migration, suspend and resume durations that grow with the memory
//!   allocated to the VM (migrations up to ≈ 26 s at 2 GiB);
//! * remote suspends/resumes (the image pushed with `scp` or `rsync`) take
//!   about twice as long as local ones — a remote resume of a 2 GiB VM takes
//!   up to ≈ 3 minutes;
//! * a busy VM co-hosted with the manipulated VM is decelerated by ≈ 1.3×
//!   during local operations and ≈ 1.5× during remote ones.
//!
//! [`DurationModel::paper()`] encodes those calibration points; every
//! coefficient can be overridden for sensitivity studies.

use cwcs_model::MemoryMib;
use cwcs_plan::Action;

/// How a suspended image travels to another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMethod {
    /// The image stays on the node (no transfer).
    Local,
    /// The image is pushed with `scp`.
    Scp,
    /// The image is pushed with `rsync`.
    Rsync,
}

impl TransferMethod {
    /// All methods, in the order of Figure 3's legends.
    pub const ALL: [TransferMethod; 3] = [
        TransferMethod::Local,
        TransferMethod::Scp,
        TransferMethod::Rsync,
    ];

    /// Label used by the figure reproductions.
    pub fn label(&self) -> &'static str {
        match self {
            TransferMethod::Local => "local",
            TransferMethod::Scp => "local+scp",
            TransferMethod::Rsync => "local+rsync",
        }
    }
}

/// The action-duration model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationModel {
    /// Boot duration of a VM, seconds (≈ 6 s in the paper).
    pub run_secs: f64,
    /// Clean shutdown duration, seconds (≈ 25 s in the paper).
    pub stop_secs: f64,
    /// Hard shutdown duration, seconds (the paper notes the clean shutdown
    /// "can easily be reduced by using a hard shutdown").
    pub hard_stop_secs: f64,
    /// Fixed part of a live migration, seconds.
    pub migrate_base_secs: f64,
    /// Per-MiB part of a live migration, seconds.
    pub migrate_secs_per_mib: f64,
    /// Per-MiB duration of a local suspend (writing the image to disk).
    pub suspend_secs_per_mib: f64,
    /// Per-MiB duration of a local resume (reading the image from disk).
    pub resume_secs_per_mib: f64,
    /// Multiplier applied when the image travels with `scp`.
    pub scp_factor: f64,
    /// Multiplier applied when the image travels with `rsync`.
    pub rsync_factor: f64,
    /// Use hard shutdowns instead of clean ones.
    pub hard_shutdown: bool,
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel::paper()
    }
}

impl DurationModel {
    /// Calibration matching the measurements of Figure 3.
    ///
    /// * migrate: 2 s + 0.0117 s/MiB → ≈ 8 s (512 MiB), ≈ 14 s (1 GiB),
    ///   ≈ 26 s (2 GiB);
    /// * local suspend/resume: 0.049 s/MiB → ≈ 25 s (512 MiB), ≈ 50 s
    ///   (1 GiB), ≈ 100 s (2 GiB);
    /// * remote (scp/rsync): ≈ 2× the local duration → a remote resume of a
    ///   2 GiB VM takes ≈ 200 s, the "up to 3 minutes" of the paper.
    pub fn paper() -> Self {
        DurationModel {
            run_secs: 6.0,
            stop_secs: 25.0,
            hard_stop_secs: 3.0,
            migrate_base_secs: 2.0,
            migrate_secs_per_mib: 0.0117,
            suspend_secs_per_mib: 0.049,
            resume_secs_per_mib: 0.049,
            scp_factor: 2.0,
            rsync_factor: 1.9,
            hard_shutdown: false,
        }
    }

    /// Boot duration (independent of the memory size).
    pub fn run_duration(&self) -> f64 {
        self.run_secs
    }

    /// Shutdown duration (independent of the memory size).
    pub fn stop_duration(&self) -> f64 {
        if self.hard_shutdown {
            self.hard_stop_secs
        } else {
            self.stop_secs
        }
    }

    /// Live-migration duration for a VM with `memory` MiB.
    pub fn migrate_duration(&self, memory: MemoryMib) -> f64 {
        self.migrate_base_secs + self.migrate_secs_per_mib * memory.raw() as f64
    }

    /// Suspend duration: writing the image locally, optionally followed by a
    /// transfer to another node.
    pub fn suspend_duration(&self, memory: MemoryMib, transfer: TransferMethod) -> f64 {
        let local = self.suspend_secs_per_mib * memory.raw() as f64;
        local * self.transfer_factor(transfer)
    }

    /// Resume duration: optionally fetching the image from another node, then
    /// restoring it.
    pub fn resume_duration(&self, memory: MemoryMib, transfer: TransferMethod) -> f64 {
        let local = self.resume_secs_per_mib * memory.raw() as f64;
        local * self.transfer_factor(transfer)
    }

    fn transfer_factor(&self, transfer: TransferMethod) -> f64 {
        match transfer {
            TransferMethod::Local => 1.0,
            TransferMethod::Scp => self.scp_factor,
            TransferMethod::Rsync => self.rsync_factor,
        }
    }

    /// Duration of a planned action.  Remote resumes use the `scp` transfer
    /// (the default of the paper's prototype).
    pub fn action_duration(&self, action: &Action) -> f64 {
        match action {
            Action::Run { .. } => self.run_duration(),
            Action::Stop { .. } => self.stop_duration(),
            Action::Migrate { .. } => self.migrate_duration(action.memory()),
            Action::Suspend { .. } => self.suspend_duration(action.memory(), TransferMethod::Local),
            Action::Resume { .. } => {
                let transfer = if action.is_local_resume() {
                    TransferMethod::Local
                } else {
                    TransferMethod::Scp
                };
                self.resume_duration(action.memory(), transfer)
            }
        }
    }
}

/// Deceleration of busy VMs co-hosted with an ongoing operation (§2.3: "the
/// impact reaches a maximum of 50% during the transition").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceModel {
    /// Slow-down factor during local operations (≈ 1.3 in the paper).
    pub local_factor: f64,
    /// Slow-down factor during operations that transfer data over the
    /// network (≈ 1.5 in the paper).
    pub remote_factor: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel::paper()
    }
}

impl InterferenceModel {
    /// The factors reported in Section 2.3.
    pub fn paper() -> Self {
        InterferenceModel {
            local_factor: 1.3,
            remote_factor: 1.5,
        }
    }

    /// Factor to apply to busy VMs sharing a node with `action`.
    pub fn factor_for(&self, action: &Action) -> f64 {
        match action {
            Action::Migrate { .. } => self.remote_factor,
            Action::Resume { .. } if action.is_remote_resume() => self.remote_factor,
            Action::Run { .. } | Action::Stop { .. } => 1.0,
            _ => self.local_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwcs_model::{CpuCapacity, NodeId, ResourceDemand, VmId};

    fn demand(mem: u64) -> ResourceDemand {
        ResourceDemand::new(CpuCapacity::cores(1), MemoryMib::mib(mem))
    }

    #[test]
    fn run_and_stop_do_not_depend_on_memory() {
        let m = DurationModel::paper();
        assert_eq!(m.run_duration(), 6.0);
        assert_eq!(m.stop_duration(), 25.0);
        let hard = DurationModel {
            hard_shutdown: true,
            ..DurationModel::paper()
        };
        assert_eq!(hard.stop_duration(), 3.0);
    }

    #[test]
    fn migration_matches_figure_3a() {
        let m = DurationModel::paper();
        let at_512 = m.migrate_duration(MemoryMib::mib(512));
        let at_2048 = m.migrate_duration(MemoryMib::mib(2048));
        assert!(
            at_512 > 5.0 && at_512 < 12.0,
            "≈ 8 s at 512 MiB, got {at_512}"
        );
        assert!(
            at_2048 > 20.0 && at_2048 < 30.0,
            "≈ 26 s at 2 GiB, got {at_2048}"
        );
        assert!(at_2048 > at_512, "duration grows with memory");
    }

    #[test]
    fn remote_resume_reaches_three_minutes() {
        let m = DurationModel::paper();
        let remote = m.resume_duration(MemoryMib::mib(2048), TransferMethod::Scp);
        assert!(
            remote > 150.0 && remote < 230.0,
            "≈ 3 minutes, got {remote}"
        );
        let local = m.resume_duration(MemoryMib::mib(2048), TransferMethod::Local);
        assert!((remote / local - 2.0).abs() < 0.2, "remote ≈ 2× local");
    }

    #[test]
    fn rsync_and_scp_are_both_remote() {
        let m = DurationModel::paper();
        let local = m.suspend_duration(MemoryMib::mib(1024), TransferMethod::Local);
        let scp = m.suspend_duration(MemoryMib::mib(1024), TransferMethod::Scp);
        let rsync = m.suspend_duration(MemoryMib::mib(1024), TransferMethod::Rsync);
        assert!(scp > local * 1.5);
        assert!(rsync > local * 1.5);
    }

    #[test]
    fn action_duration_dispatches_per_kind() {
        let m = DurationModel::paper();
        let d = demand(1024);
        assert_eq!(
            m.action_duration(&Action::Run {
                vm: VmId(0),
                node: NodeId(0),
                demand: d
            }),
            6.0
        );
        let migrate = Action::Migrate {
            vm: VmId(0),
            from: NodeId(0),
            to: NodeId(1),
            demand: d,
        };
        assert!(
            (m.action_duration(&migrate) - m.migrate_duration(MemoryMib::mib(1024))).abs() < 1e-9
        );
        let local_resume = Action::Resume {
            vm: VmId(0),
            image: NodeId(1),
            to: NodeId(1),
            demand: d,
        };
        let remote_resume = Action::Resume {
            vm: VmId(0),
            image: NodeId(0),
            to: NodeId(1),
            demand: d,
        };
        assert!(m.action_duration(&remote_resume) > m.action_duration(&local_resume) * 1.5);
    }

    #[test]
    fn suspend_resume_longer_than_migration() {
        // Figure 3: "the duration of a suspend or a resume action is much
        // longer than the duration of a migration".
        let m = DurationModel::paper();
        for mem in [512u64, 1024, 2048] {
            assert!(
                m.suspend_duration(MemoryMib::mib(mem), TransferMethod::Local)
                    > m.migrate_duration(MemoryMib::mib(mem))
            );
        }
    }

    #[test]
    fn interference_factors() {
        let i = InterferenceModel::paper();
        let d = demand(512);
        let migrate = Action::Migrate {
            vm: VmId(0),
            from: NodeId(0),
            to: NodeId(1),
            demand: d,
        };
        let suspend = Action::Suspend {
            vm: VmId(0),
            node: NodeId(0),
            demand: d,
        };
        let run = Action::Run {
            vm: VmId(0),
            node: NodeId(0),
            demand: d,
        };
        let remote_resume = Action::Resume {
            vm: VmId(0),
            image: NodeId(0),
            to: NodeId(1),
            demand: d,
        };
        assert_eq!(i.factor_for(&migrate), 1.5);
        assert_eq!(i.factor_for(&suspend), 1.3);
        assert_eq!(i.factor_for(&run), 1.0);
        assert_eq!(i.factor_for(&remote_resume), 1.5);
    }

    #[test]
    fn transfer_labels_match_figure_3_legends() {
        assert_eq!(TransferMethod::Local.label(), "local");
        assert_eq!(TransferMethod::Scp.label(), "local+scp");
        assert_eq!(TransferMethod::Rsync.label(), "local+rsync");
    }
}
