//! The monitoring service: periodic snapshots of per-VM demands.
//!
//! Entropy "observes the CPU and memory consumptions of the running VMs by
//! requesting an existent monitoring service" (Ganglia in the prototype) and
//! "accumulates new informations about resource usage, which takes about 10
//! seconds" before iterating again.  The simulated service reproduces that
//! behaviour: it refreshes its snapshot at most every `refresh_period_secs`
//! of virtual time, so the decision module works on slightly stale data, just
//! like the real system.

use std::collections::BTreeMap;

use cwcs_model::{CpuCapacity, MemoryMib, VmId, VmState};

use crate::cluster::SimulatedCluster;

/// A snapshot of the demands of every VM at a given virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandSnapshot {
    /// Virtual time at which the snapshot was taken.
    pub time_secs: f64,
    /// Per-VM observed CPU demand.
    pub cpu: BTreeMap<VmId, CpuCapacity>,
    /// Per-VM observed memory demand.
    pub memory: BTreeMap<VmId, MemoryMib>,
    /// Per-VM observed state.
    pub states: BTreeMap<VmId, VmState>,
}

impl DemandSnapshot {
    /// Observed CPU demand of a VM (zero when unknown).
    pub fn cpu_of(&self, vm: VmId) -> CpuCapacity {
        self.cpu.get(&vm).copied().unwrap_or(CpuCapacity::ZERO)
    }

    /// Observed memory demand of a VM (zero when unknown).
    pub fn memory_of(&self, vm: VmId) -> MemoryMib {
        self.memory.get(&vm).copied().unwrap_or(MemoryMib::ZERO)
    }
}

/// The Ganglia-like monitoring service.
#[derive(Debug, Clone)]
pub struct MonitoringService {
    refresh_period_secs: f64,
    last: Option<DemandSnapshot>,
}

impl Default for MonitoringService {
    fn default() -> Self {
        MonitoringService::new(10.0)
    }
}

impl MonitoringService {
    /// A service that refreshes its view at most every
    /// `refresh_period_secs` seconds of virtual time (10 s in the paper).
    pub fn new(refresh_period_secs: f64) -> Self {
        MonitoringService {
            refresh_period_secs,
            last: None,
        }
    }

    /// The refresh period.
    pub fn refresh_period_secs(&self) -> f64 {
        self.refresh_period_secs
    }

    /// Observe the cluster: returns the cached snapshot when it is fresh
    /// enough, otherwise takes (and caches) a new one.
    pub fn observe(&mut self, cluster: &SimulatedCluster) -> DemandSnapshot {
        let now = cluster.clock_secs();
        let fresh_enough = self
            .last
            .as_ref()
            .map(|s| now - s.time_secs < self.refresh_period_secs)
            .unwrap_or(false);
        if fresh_enough {
            return self.last.clone().expect("checked above");
        }
        let snapshot = Self::snapshot(cluster);
        self.last = Some(snapshot.clone());
        snapshot
    }

    /// Take an immediate snapshot, bypassing the cache.
    pub fn snapshot(cluster: &SimulatedCluster) -> DemandSnapshot {
        let config = cluster.configuration();
        let mut cpu = BTreeMap::new();
        let mut memory = BTreeMap::new();
        let mut states = BTreeMap::new();
        for vm in config.vms() {
            cpu.insert(vm.id, vm.cpu);
            memory.insert(vm.id, vm.memory);
            states.insert(vm.id, config.state(vm.id).expect("vm exists"));
        }
        DemandSnapshot {
            time_secs: cluster.clock_secs(),
            cpu,
            memory,
            states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwcs_model::{Configuration, Node, NodeId, Vjob, VjobId, Vm, VmAssignment};
    use cwcs_workload::{VjobSpec, VmWorkProfile};
    use std::collections::BTreeMap as Map;

    fn cluster() -> SimulatedCluster {
        let mut config = Configuration::new();
        config
            .add_node(Node::new(
                NodeId(0),
                CpuCapacity::cores(2),
                MemoryMib::gib(4),
            ))
            .unwrap();
        config
            .add_vm(Vm::new(VmId(0), MemoryMib::mib(512), CpuCapacity::cores(1)))
            .unwrap();
        config
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut cluster = SimulatedCluster::new(config);
        let vm = Vm::new(VmId(0), MemoryMib::mib(512), CpuCapacity::cores(1));
        let vjob = Vjob::new(VjobId(0), vec![VmId(0)], 0);
        cluster.register_vjob(&VjobSpec::new(
            vjob,
            vec![vm],
            vec![VmWorkProfile::single_compute(30.0)],
        ));
        cluster.refresh_demands();
        cluster
    }

    #[test]
    fn snapshot_reports_demands_and_states() {
        let cluster = cluster();
        let snap = MonitoringService::snapshot(&cluster);
        assert_eq!(snap.cpu_of(VmId(0)), CpuCapacity::cores(1));
        assert_eq!(snap.memory_of(VmId(0)), MemoryMib::mib(512));
        assert_eq!(snap.states[&VmId(0)], VmState::Running);
        assert_eq!(snap.cpu_of(VmId(9)), CpuCapacity::ZERO);
    }

    #[test]
    fn observation_is_cached_within_the_refresh_period() {
        let mut cluster = cluster();
        let mut monitor = MonitoringService::new(10.0);
        let first = monitor.observe(&cluster);
        assert_eq!(first.cpu_of(VmId(0)), CpuCapacity::cores(1));

        // The VM finishes its work after 30 s; 5 s later the cached snapshot
        // still reports the old demand...
        cluster.advance(35.0, &Map::new());
        // (advance refreshes demands: the VM now idles)
        assert_eq!(
            cluster.configuration().vm(VmId(0)).unwrap().cpu,
            CpuCapacity::ZERO
        );
        let cached = {
            let mut m = MonitoringService::new(1000.0);
            m.observe(&cluster); // prime at t=35
            cluster.advance(5.0, &Map::new());
            m.observe(&cluster)
        };
        assert_eq!(
            cached.time_secs, 35.0,
            "stale snapshot is served within the period"
        );

        // ...but a service with a 10 s period refreshes at t=35 (>= 10 s later).
        let refreshed = monitor.observe(&cluster);
        assert!(refreshed.time_secs >= 35.0);
        assert_eq!(refreshed.cpu_of(VmId(0)), CpuCapacity::ZERO);
    }

    #[test]
    fn default_period_matches_the_paper() {
        assert_eq!(MonitoringService::default().refresh_period_secs(), 10.0);
    }
}
