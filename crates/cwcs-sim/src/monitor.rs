//! The monitoring service: the observation side of the incremental control
//! loop.
//!
//! Entropy "observes the CPU and memory consumptions of the running VMs by
//! requesting an existent monitoring service" (Ganglia in the prototype) and
//! "accumulates new informations about resource usage, which takes about 10
//! seconds" before iterating again.  The historical API reproduced that as a
//! full [`DemandSnapshot`] per observation — O(cluster) work per tick, which
//! a 10 000-node control plane cannot afford when only a handful of VMs
//! changed since the last tick.
//!
//! # The delta protocol
//!
//! The service is therefore built around **deltas**.  The simulated cluster
//! journals every observable change (a VM's demand, state or placement, a
//! node's capacity, a vjob completion — see
//! [`SimulatedCluster::drain_changes`]), and
//! [`MonitoringService::observe`] drains that journal into an
//! [`ObservationDelta`]: the new observations of exactly the VMs and nodes
//! that changed, stamped with a monotone version.  The control loop applies
//! each delta to a persistent [`ClusterView`] — its versioned model of the
//! cluster — which maintains a per-node load index incrementally, so
//! overload detection ([`ClusterView::overloaded_nodes`]) is O(nodes)
//! instead of O(nodes × VMs).
//!
//! The first observation of a cluster is always *full* (`delta.full`), as is
//! any observation after an arbitrary configuration mutation the journal
//! could not attribute to a specific VM.  Applying a full delta resets the
//! view; applying an incremental one patches it.  The two maintenance modes
//! are bit-identical by construction, and the lockstep suite in `cwcs-core`
//! asserts it end to end.
//!
//! # Refresh period and staleness
//!
//! The service refreshes at most every `refresh_period_secs` of virtual time
//! (10 s in the paper): within the period [`MonitoringService::observe`]
//! returns an **empty** delta without draining the journal — the pending
//! changes are simply reported by the next real observation, so nothing is
//! lost, and the decision module works on slightly stale data exactly like
//! the real system.
//!
//! Full [`DemandSnapshot`]s remain available, either directly
//! ([`MonitoringService::snapshot`]) or reconstructed from the view
//! ([`ClusterView::snapshot`]), for consumers that want the legacy shape.

use std::collections::BTreeMap;

use cwcs_model::{
    CpuCapacity, MemoryMib, NetBandwidth, NodeId, ResourceDemand, ResourceUsage, VjobId, VmId,
    VmState,
};

use crate::cluster::SimulatedCluster;

/// A snapshot of the demands of every VM at a given virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandSnapshot {
    /// Virtual time at which the snapshot was taken.
    pub time_secs: f64,
    /// Per-VM observed CPU demand.
    pub cpu: BTreeMap<VmId, CpuCapacity>,
    /// Per-VM observed memory demand.
    pub memory: BTreeMap<VmId, MemoryMib>,
    /// Per-VM observed state.
    pub states: BTreeMap<VmId, VmState>,
}

impl DemandSnapshot {
    /// Observed CPU demand of a VM (zero when unknown).
    pub fn cpu_of(&self, vm: VmId) -> CpuCapacity {
        self.cpu.get(&vm).copied().unwrap_or(CpuCapacity::ZERO)
    }

    /// Observed memory demand of a VM (zero when unknown).
    pub fn memory_of(&self, vm: VmId) -> MemoryMib {
        self.memory.get(&vm).copied().unwrap_or(MemoryMib::ZERO)
    }
}

/// Everything the monitoring service observes about one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmObservation {
    /// Observed CPU demand.
    pub cpu: CpuCapacity,
    /// Allocated memory.
    pub memory: MemoryMib,
    /// Observed network demand.
    pub net: NetBandwidth,
    /// Life-cycle state.
    pub state: VmState,
    /// Hosting node when running.
    pub host: Option<NodeId>,
    /// Node holding the suspended memory image when sleeping.
    pub image: Option<NodeId>,
}

impl VmObservation {
    /// The VM's observed demand vector.
    pub fn demand(&self) -> ResourceDemand {
        ResourceDemand::new(self.cpu, self.memory).with_net(self.net)
    }
}

/// What changed since the previous observation: the unit the incremental
/// control loop consumes.
///
/// An incremental delta (`full == false`) carries the new observations of
/// exactly the VMs and nodes the cluster journaled; a full delta carries
/// every VM and node and resets the receiving [`ClusterView`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationDelta {
    /// The journal version the receiving view must be at (its current
    /// [`ClusterView::version`]) for this delta to apply incrementally.
    pub from_version: u64,
    /// The journal version after this delta.
    pub version: u64,
    /// Virtual time of the observation.
    pub time_secs: f64,
    /// True when this is a full observation (first tick, forced resync, or
    /// an arbitrary configuration mutation happened).
    pub full: bool,
    /// New observations of the changed VMs (every VM when `full`).
    pub vms: BTreeMap<VmId, VmObservation>,
    /// New capacities of the changed nodes (every node when `full`).
    pub node_capacities: BTreeMap<NodeId, ResourceDemand>,
    /// Vjobs whose completion was reported since the previous observation.
    pub completed_vjobs: Vec<VjobId>,
}

impl ObservationDelta {
    /// True when the delta carries no change at all (a within-refresh-period
    /// observation, or genuinely nothing happened).
    pub fn is_empty(&self) -> bool {
        !self.full
            && self.vms.is_empty()
            && self.node_capacities.is_empty()
            && self.completed_vjobs.is_empty()
    }
}

/// The control loop's persistent, versioned model of the cluster, maintained
/// by applying [`ObservationDelta`]s.
///
/// Besides the raw observations, the view keeps a per-node load index
/// (the summed demand of the running VMs it hosts) **incrementally**: each
/// applied VM observation debits its previous contribution and credits the
/// new one, so [`ClusterView::overloaded_nodes`] — the trigger of the
/// repair pass — costs O(nodes), not O(nodes × VMs) like
/// `Configuration::viability_violations`.
#[derive(Debug, Clone, Default)]
pub struct ClusterView {
    /// Version of the last applied delta.
    pub version: u64,
    /// Virtual time of the last applied delta.
    pub time_secs: f64,
    vms: BTreeMap<VmId, VmObservation>,
    /// Node capacities.
    nodes: BTreeMap<NodeId, ResourceDemand>,
    /// Summed demand of the running VMs per node (absent = zero).
    node_load: BTreeMap<NodeId, ResourceDemand>,
}

impl ClusterView {
    /// An empty view (version 0); the first applied delta must be full.
    pub fn new() -> Self {
        ClusterView::default()
    }

    /// Apply a delta.  A full delta resets the view; an incremental one
    /// patches the stored observations and the per-node load index.
    ///
    /// # Panics
    /// Panics when an incremental delta's `from_version` does not match the
    /// view's version: deltas must be applied in order, without gaps.
    pub fn apply(&mut self, delta: &ObservationDelta) {
        if delta.full {
            self.vms.clear();
            self.nodes.clear();
            self.node_load.clear();
        } else {
            assert_eq!(
                delta.from_version, self.version,
                "observation deltas must be applied in order"
            );
        }
        for (&node, &capacity) in &delta.node_capacities {
            self.nodes.insert(node, capacity);
        }
        for (&vm, &obs) in &delta.vms {
            let old = self.vms.insert(vm, obs);
            if let Some(old) = old {
                if old.state == VmState::Running {
                    if let Some(host) = old.host {
                        self.debit(host, &old.demand());
                    }
                }
            }
            if obs.state == VmState::Running {
                if let Some(host) = obs.host {
                    self.credit(host, &obs.demand());
                }
            }
        }
        self.version = delta.version;
        self.time_secs = delta.time_secs;
    }

    fn credit(&mut self, node: NodeId, demand: &ResourceDemand) {
        let load = self.node_load.entry(node).or_insert(ResourceDemand::ZERO);
        *load += *demand;
    }

    fn debit(&mut self, node: NodeId, demand: &ResourceDemand) {
        if let Some(load) = self.node_load.get_mut(&node) {
            *load = load.saturating_sub(demand);
            if load.is_zero() {
                self.node_load.remove(&node);
            }
        }
    }

    /// The stored observation of a VM.
    pub fn vm(&self, vm: VmId) -> Option<&VmObservation> {
        self.vms.get(&vm)
    }

    /// All stored VM observations, in id order.
    pub fn vms(&self) -> impl Iterator<Item = (&VmId, &VmObservation)> {
        self.vms.iter()
    }

    /// The stored capacity of a node.
    pub fn node_capacity(&self, node: NodeId) -> Option<ResourceDemand> {
        self.nodes.get(&node).copied()
    }

    /// Number of observed VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Number of observed nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The observed load (summed running-VM demand) of a node.
    pub fn node_load(&self, node: NodeId) -> ResourceDemand {
        self.node_load
            .get(&node)
            .copied()
            .unwrap_or(ResourceDemand::ZERO)
    }

    /// Nodes whose observed load exceeds their capacity, with their usage,
    /// in node id order — the same answer as
    /// `Configuration::viability_violations`, computed from the incremental
    /// load index in O(nodes).
    pub fn overloaded_nodes(&self) -> Vec<(NodeId, ResourceUsage)> {
        self.nodes
            .iter()
            .filter_map(|(&node, &capacity)| {
                let used = self.node_load(node);
                if used.fits_in(&capacity) {
                    None
                } else {
                    Some((node, ResourceUsage { used, capacity }))
                }
            })
            .collect()
    }

    /// Reconstruct the legacy full-snapshot shape from the view.
    pub fn snapshot(&self) -> DemandSnapshot {
        let mut cpu = BTreeMap::new();
        let mut memory = BTreeMap::new();
        let mut states = BTreeMap::new();
        for (&vm, obs) in &self.vms {
            cpu.insert(vm, obs.cpu);
            memory.insert(vm, obs.memory);
            states.insert(vm, obs.state);
        }
        DemandSnapshot {
            time_secs: self.time_secs,
            cpu,
            memory,
            states,
        }
    }
}

/// The Ganglia-like monitoring service.
#[derive(Debug, Clone)]
pub struct MonitoringService {
    refresh_period_secs: f64,
    /// Virtual time of the last real (journal-draining) observation.
    last_refresh_at: Option<f64>,
    /// Journal version as of that observation.
    last_version: u64,
    /// Virtual time stamped on that observation.
    last_time: f64,
}

impl Default for MonitoringService {
    fn default() -> Self {
        MonitoringService::new(10.0)
    }
}

impl MonitoringService {
    /// A service that refreshes its view at most every
    /// `refresh_period_secs` seconds of virtual time (10 s in the paper).
    pub fn new(refresh_period_secs: f64) -> Self {
        MonitoringService {
            refresh_period_secs,
            last_refresh_at: None,
            last_version: 0,
            last_time: 0.0,
        }
    }

    /// The refresh period.
    pub fn refresh_period_secs(&self) -> f64 {
        self.refresh_period_secs
    }

    /// Observe the cluster: drain its change journal into an
    /// [`ObservationDelta`].
    ///
    /// Within the refresh period of the previous observation this returns an
    /// **empty** delta (stamped with the previous observation's version and
    /// time) without touching the journal: the pending changes are simply
    /// carried by the next real observation.  The first observation, and any
    /// observation after the cluster was marked fully changed, is a full
    /// one.
    pub fn observe(&mut self, cluster: &mut SimulatedCluster) -> ObservationDelta {
        let now = cluster.clock_secs();
        let fresh_enough = self
            .last_refresh_at
            .map(|at| now - at < self.refresh_period_secs)
            .unwrap_or(false);
        if fresh_enough {
            return ObservationDelta {
                from_version: self.last_version,
                version: self.last_version,
                time_secs: self.last_time,
                full: false,
                vms: BTreeMap::new(),
                node_capacities: BTreeMap::new(),
                completed_vjobs: Vec::new(),
            };
        }
        let from_version = self.last_version;
        let changes = cluster.drain_changes();
        let config = cluster.configuration();
        let mut vms = BTreeMap::new();
        let mut node_capacities = BTreeMap::new();
        let observe_vm = |vm: VmId| -> Option<VmObservation> {
            let v = config.vm(vm).ok()?;
            let a = config.assignment(vm).ok()?;
            Some(VmObservation {
                cpu: v.cpu,
                memory: v.memory,
                net: v.net,
                state: a.state,
                host: a.host,
                image: a.image,
            })
        };
        if changes.full {
            for v in config.vms() {
                if let Some(obs) = observe_vm(v.id) {
                    vms.insert(v.id, obs);
                }
            }
            for n in config.nodes() {
                node_capacities.insert(n.id, n.capacity());
            }
        } else {
            for &vm in &changes.vms {
                if let Some(obs) = observe_vm(vm) {
                    vms.insert(vm, obs);
                }
            }
            for &node in &changes.nodes {
                if let Ok(n) = config.node(node) {
                    node_capacities.insert(node, n.capacity());
                }
            }
        }
        self.last_refresh_at = Some(now);
        self.last_version = changes.version;
        self.last_time = now;
        ObservationDelta {
            from_version,
            version: changes.version,
            time_secs: now,
            full: changes.full,
            vms,
            node_capacities,
            completed_vjobs: changes.completions,
        }
    }

    /// Take an immediate full snapshot, bypassing the delta machinery and
    /// the refresh-period cache (the journal is untouched).
    pub fn snapshot(cluster: &SimulatedCluster) -> DemandSnapshot {
        let config = cluster.configuration();
        let mut cpu = BTreeMap::new();
        let mut memory = BTreeMap::new();
        let mut states = BTreeMap::new();
        for vm in config.vms() {
            cpu.insert(vm.id, vm.cpu);
            memory.insert(vm.id, vm.memory);
            states.insert(vm.id, config.state(vm.id).expect("vm exists"));
        }
        DemandSnapshot {
            time_secs: cluster.clock_secs(),
            cpu,
            memory,
            states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwcs_model::{Configuration, Node, NodeId, Vjob, VjobId, Vm, VmAssignment};
    use cwcs_workload::{VjobSpec, VmWorkProfile};
    use std::collections::BTreeMap as Map;

    fn cluster() -> SimulatedCluster {
        let mut config = Configuration::new();
        config
            .add_node(Node::new(
                NodeId(0),
                CpuCapacity::cores(2),
                MemoryMib::gib(4),
            ))
            .unwrap();
        config
            .add_vm(Vm::new(VmId(0), MemoryMib::mib(512), CpuCapacity::cores(1)))
            .unwrap();
        config
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut cluster = SimulatedCluster::new(config);
        let vm = Vm::new(VmId(0), MemoryMib::mib(512), CpuCapacity::cores(1));
        let vjob = Vjob::new(VjobId(0), vec![VmId(0)], 0);
        cluster.register_vjob(&VjobSpec::new(
            vjob,
            vec![vm],
            vec![VmWorkProfile::single_compute(30.0)],
        ));
        cluster.refresh_demands();
        cluster
    }

    #[test]
    fn snapshot_reports_demands_and_states() {
        let cluster = cluster();
        let snap = MonitoringService::snapshot(&cluster);
        assert_eq!(snap.cpu_of(VmId(0)), CpuCapacity::cores(1));
        assert_eq!(snap.memory_of(VmId(0)), MemoryMib::mib(512));
        assert_eq!(snap.states[&VmId(0)], VmState::Running);
        assert_eq!(snap.cpu_of(VmId(9)), CpuCapacity::ZERO);
    }

    #[test]
    fn first_observation_is_full_then_deltas_shrink() {
        let mut cluster = cluster();
        let mut monitor = MonitoringService::new(0.0);
        let first = monitor.observe(&mut cluster);
        assert!(first.full);
        assert_eq!(first.vms.len(), 1);
        assert_eq!(first.node_capacities.len(), 1);

        let mut view = ClusterView::new();
        view.apply(&first);
        assert_eq!(view.vm(VmId(0)).unwrap().cpu, CpuCapacity::cores(1));

        // Nothing happened: the next delta is empty.
        let delta = monitor.observe(&mut cluster);
        assert!(delta.is_empty());
        view.apply(&delta);

        // The VM finishes at t=30; its demand drop is a one-VM delta.
        cluster.advance(35.0, &Map::new());
        let delta = monitor.observe(&mut cluster);
        assert!(!delta.full);
        assert_eq!(delta.vms.len(), 1);
        assert_eq!(delta.vms[&VmId(0)].cpu, CpuCapacity::ZERO);
        assert_eq!(delta.completed_vjobs, vec![VjobId(0)]);
        view.apply(&delta);
        assert_eq!(view.vm(VmId(0)).unwrap().cpu, CpuCapacity::ZERO);
    }

    #[test]
    fn observation_is_cached_within_the_refresh_period() {
        let mut cluster = cluster();
        let mut monitor = MonitoringService::new(10.0);
        let first = monitor.observe(&mut cluster);
        assert!(first.full);

        // 5 s later the service serves an empty delta without draining...
        cluster.advance(5.0, &Map::new());
        let cached = monitor.observe(&mut cluster);
        assert!(cached.is_empty());
        assert_eq!(
            cached.time_secs, 0.0,
            "stamped with the last real observation"
        );

        // ...and the demand edge at t=30 (plus the completion) is still
        // reported by the next real observation: nothing is lost.
        cluster.advance(30.0, &Map::new());
        let delta = monitor.observe(&mut cluster);
        assert!(!delta.is_empty());
        assert_eq!(delta.vms[&VmId(0)].cpu, CpuCapacity::ZERO);
        assert_eq!(delta.completed_vjobs, vec![VjobId(0)]);
    }

    #[test]
    fn view_matches_a_fresh_snapshot_across_deltas() {
        let mut cluster = cluster();
        let mut monitor = MonitoringService::new(0.0);
        let mut view = ClusterView::new();
        view.apply(&monitor.observe(&mut cluster));
        for _ in 0..4 {
            cluster.advance(10.0, &Map::new());
            view.apply(&monitor.observe(&mut cluster));
            assert_eq!(view.snapshot(), MonitoringService::snapshot(&cluster));
        }
    }

    #[test]
    fn the_load_index_tracks_moves_incrementally() {
        let mut config = Configuration::new();
        for i in 0..2 {
            config
                .add_node(Node::new(
                    NodeId(i),
                    CpuCapacity::cores(2),
                    MemoryMib::gib(4),
                ))
                .unwrap();
        }
        config
            .add_vm(Vm::new(VmId(0), MemoryMib::gib(1), CpuCapacity::cores(1)))
            .unwrap();
        config
            .set_assignment(VmId(0), VmAssignment::running(NodeId(0)))
            .unwrap();
        let mut cluster = SimulatedCluster::new(config);
        let mut monitor = MonitoringService::new(0.0);
        let mut view = ClusterView::new();
        view.apply(&monitor.observe(&mut cluster));
        assert_eq!(view.node_load(NodeId(0)).memory, MemoryMib::gib(1));

        // A targeted move journals one VM; the index follows.
        cluster
            .configuration_mut_for_vm(VmId(0))
            .set_assignment(VmId(0), VmAssignment::running(NodeId(1)))
            .unwrap();
        let delta = monitor.observe(&mut cluster);
        assert!(!delta.full);
        view.apply(&delta);
        assert_eq!(view.node_load(NodeId(0)), ResourceDemand::ZERO);
        assert_eq!(view.node_load(NodeId(1)).memory, MemoryMib::gib(1));
        assert!(view.overloaded_nodes().is_empty());
    }

    #[test]
    fn overloaded_nodes_matches_viability_violations() {
        // Two 1-core VMs on a 1-core node: overloaded.
        let mut config = Configuration::new();
        config
            .add_node(Node::new(
                NodeId(0),
                CpuCapacity::cores(1),
                MemoryMib::gib(4),
            ))
            .unwrap();
        for i in 0..2 {
            config
                .add_vm(Vm::new(VmId(i), MemoryMib::mib(512), CpuCapacity::cores(1)))
                .unwrap();
            config
                .set_assignment(VmId(i), VmAssignment::running(NodeId(0)))
                .unwrap();
        }
        let mut cluster = SimulatedCluster::new(config);
        let mut monitor = MonitoringService::new(0.0);
        let mut view = ClusterView::new();
        view.apply(&monitor.observe(&mut cluster));
        let from_view = view.overloaded_nodes();
        let from_config = cluster.configuration().viability_violations();
        assert_eq!(from_view, from_config);
        assert_eq!(from_view.len(), 1);
    }

    #[test]
    fn node_capacity_changes_flow_through_the_delta() {
        let mut cluster = cluster();
        let mut monitor = MonitoringService::new(0.0);
        let mut view = ClusterView::new();
        view.apply(&monitor.observe(&mut cluster));
        assert!(view.overloaded_nodes().is_empty());
        cluster
            .set_node_capacity(
                NodeId(0),
                CpuCapacity::percent(50),
                MemoryMib::gib(4),
                NetBandwidth::ZERO,
            )
            .unwrap();
        let delta = monitor.observe(&mut cluster);
        assert!(!delta.full);
        assert_eq!(delta.node_capacities.len(), 1);
        view.apply(&delta);
        assert_eq!(
            view.overloaded_nodes().len(),
            1,
            "the degraded node no longer fits its running VM"
        );
    }

    #[test]
    #[should_panic(expected = "applied in order")]
    fn out_of_order_deltas_are_rejected() {
        let mut view = ClusterView::new();
        view.apply(&ObservationDelta {
            from_version: 0,
            version: 3,
            time_secs: 0.0,
            full: true,
            vms: BTreeMap::new(),
            node_capacities: BTreeMap::new(),
            completed_vjobs: Vec::new(),
        });
        view.apply(&ObservationDelta {
            from_version: 7,
            version: 9,
            time_secs: 1.0,
            full: false,
            vms: BTreeMap::new(),
            node_capacities: BTreeMap::new(),
            completed_vjobs: Vec::new(),
        });
    }

    #[test]
    fn default_period_matches_the_paper() {
        assert_eq!(MonitoringService::default().refresh_period_secs(), 10.0);
    }
}
