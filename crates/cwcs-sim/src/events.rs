//! Time-ordered event queue and execution timeline of the event-driven
//! execution engine.
//!
//! The engine models a cluster-wide context switch as a discrete-event
//! simulation: each action contributes a *start* event (fired once all its
//! precedence constraints are satisfied, plus its pipeline offset) and an
//! *end* event (its releases become effective, its dependents may become
//! ready).  Between two consecutive event times the set of in-flight
//! operations — and therefore the per-node interference — is constant, which
//! is what lets the executor charge deceleration per overlapping interval
//! per node instead of over a whole pool window.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use cwcs_model::VjobId;
use cwcs_plan::Action;

/// What an [`Event`] does when it fires.
///
/// Ends order before starts at equal times so that releases become effective
/// before the actions waiting on them are considered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// The action completes: its releases become effective and its dependents
    /// lose one pending dependency.
    ActionEnd,
    /// The action starts executing on the cluster.
    ActionStart,
}

/// One scheduled event: a kind, the flat index of the action it concerns and
/// the virtual time at which it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time of the event, seconds from the start of the switch.
    pub time_secs: f64,
    /// What fires.
    pub kind: EventKind,
    /// Flat index of the action (plan order).
    pub index: usize,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time_secs
            .total_cmp(&other.time_secs)
            .then_with(|| self.kind.cmp(&other.kind))
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of events ordered by time, then kind (ends before starts),
/// then action index — a deterministic total order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule an event.
    pub fn push(&mut self, event: Event) {
        self.heap.push(std::cmp::Reverse(event));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|std::cmp::Reverse(e)| e)
    }

    /// The time of the earliest event, without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|std::cmp::Reverse(e)| e.time_secs)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Timing of one executed (or failed) action on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// The action.
    pub action: Action,
    /// Index of the pool the action came from in the original plan.
    pub pool_index: usize,
    /// Start time, seconds from the beginning of the switch.
    pub start_secs: f64,
    /// End time (actual duration for successes, the predicted occupied window
    /// for failures).
    pub end_secs: f64,
    /// True when the driver failed the action.
    pub failed: bool,
}

impl TimelineEntry {
    /// Duration of the entry.
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// A vjob completion observed at an exact event time.
#[derive(Debug, Clone, PartialEq)]
pub struct VjobCompletion {
    /// The completed vjob.
    pub vjob: VjobId,
    /// Virtual time of the completion, seconds from the start of the switch.
    pub time_secs: f64,
}

/// The full timeline of a context switch: when every action ran, when every
/// vjob completed, and the resulting makespan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionTimeline {
    /// Every action, in start order.
    pub entries: Vec<TimelineEntry>,
    /// Vjob completions observed while the switch ran, with exact times.
    pub completions: Vec<VjobCompletion>,
    /// Makespan of the switch (the last action end), seconds.
    pub duration_secs: f64,
}

impl ExecutionTimeline {
    /// Entries belonging to pool `pool_index` of the original plan.
    pub fn pool_entries(&self, pool_index: usize) -> impl Iterator<Item = &TimelineEntry> {
        self.entries
            .iter()
            .filter(move |e| e.pool_index == pool_index)
    }

    /// Largest number of actions in flight at any instant — the parallelism
    /// the engine actually achieved.
    pub fn max_concurrency(&self) -> usize {
        let mut bounds: Vec<(f64, i64)> = Vec::with_capacity(self.entries.len() * 2);
        for entry in &self.entries {
            bounds.push((entry.start_secs, 1));
            bounds.push((entry.end_secs, -1));
        }
        // Ends sort before starts at equal times: back-to-back actions do not
        // count as overlapping.
        bounds.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut current = 0i64;
        let mut best = 0i64;
        for (_, delta) in bounds {
            current += delta;
            best = best.max(current);
        }
        best.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwcs_model::{CpuCapacity, MemoryMib, NodeId, ResourceDemand, VmId};

    fn run(vm: u32) -> Action {
        Action::Run {
            vm: VmId(vm),
            node: NodeId(0),
            demand: ResourceDemand::new(CpuCapacity::cores(1), MemoryMib::mib(512)),
        }
    }

    #[test]
    fn queue_orders_by_time_then_kind_then_index() {
        let mut queue = EventQueue::new();
        queue.push(Event {
            time_secs: 5.0,
            kind: EventKind::ActionStart,
            index: 1,
        });
        queue.push(Event {
            time_secs: 5.0,
            kind: EventKind::ActionEnd,
            index: 2,
        });
        queue.push(Event {
            time_secs: 1.0,
            kind: EventKind::ActionStart,
            index: 0,
        });
        queue.push(Event {
            time_secs: 5.0,
            kind: EventKind::ActionStart,
            index: 0,
        });
        assert_eq!(queue.len(), 4);
        assert_eq!(queue.peek_time(), Some(1.0));
        let order: Vec<(f64, EventKind, usize)> = std::iter::from_fn(|| queue.pop())
            .map(|e| (e.time_secs, e.kind, e.index))
            .collect();
        assert_eq!(
            order,
            vec![
                (1.0, EventKind::ActionStart, 0),
                (5.0, EventKind::ActionEnd, 2),
                (5.0, EventKind::ActionStart, 0),
                (5.0, EventKind::ActionStart, 1),
            ]
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn max_concurrency_counts_overlaps() {
        let entry = |start: f64, end: f64| TimelineEntry {
            action: run(0),
            pool_index: 0,
            start_secs: start,
            end_secs: end,
            failed: false,
        };
        let timeline = ExecutionTimeline {
            entries: vec![entry(0.0, 10.0), entry(2.0, 5.0), entry(5.0, 12.0)],
            completions: Vec::new(),
            duration_secs: 12.0,
        };
        // [2, 5) holds two actions; at t=5 one ends exactly as another starts.
        assert_eq!(timeline.max_concurrency(), 2);
        assert_eq!(timeline.pool_entries(0).count(), 3);
        assert_eq!(ExecutionTimeline::default().max_concurrency(), 0);
    }
}
