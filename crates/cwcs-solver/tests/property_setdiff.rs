//! Property-based tests of the set-diff model-patch protocol: a cached
//! placement model whose item set drifted (items retired, slots recycled for
//! arrivals, variables appended) must be **bit-identical in search
//! behavior** — same mapped solution, same best cost, same statistics — to a
//! model freshly built over the new item set.
//!
//! The patch procedure exercised here mirrors `cwcs_core::optimizer`'s
//! `CachedModel::patch` exactly: departed items' variables are retired in
//! place ([`Model::retire_var`]), arrivals recycle retired slots
//! ([`Model::reset_var`] + [`Model::rename_var`]) before appending, the
//! packing constraints are re-posted into their original slots over the new
//! live-variable list ([`PackingSlots::resize`]), and the search is handed
//! problem-order **ranks** so first-fail tie-breaking ignores how slots were
//! recycled.  The search configuration mirrors production too: demand
//! weights, preferred values, a scattered incumbent and Luby restarts.
//!
//! Exercised over seeded randomized instances (the container has no
//! crates.io access, so `proptest` is replaced by a deterministic
//! [`SmallRng`] driver — same seed, same cases, every run).

use std::collections::{BTreeMap, BTreeSet};

use cwcs_model::SmallRng;
use cwcs_solver::constraints::{MultiDimPacking, PackingSlots};
use cwcs_solver::search::{
    ClosureObjective, RestartPolicy, Search, SearchConfig, SearchStats, ValueSelection,
    VariableSelection,
};
use cwcs_solver::{Model, VarId};

const CASES: usize = 32;
const STEPS: usize = 4;
const DIMS: usize = 3;
const ALWAYS_DIMS: usize = 2;

/// Every per-item parameter is derived deterministically from the item id,
/// so an item that survives a diff step keeps its sizes, weight, cost row
/// and preferred bin — exactly like a VM whose demand did not change.
fn item_rng(id: u32, salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x5E7D_1FF0 ^ (id as u64).wrapping_mul(0x9E37_79B9) ^ salt)
}

fn item_sizes(id: u32) -> Vec<u64> {
    let mut rng = item_rng(id, 1);
    (0..DIMS).map(|_| rng.u64_in(1, 5)).collect()
}

fn item_weight(id: u32) -> u64 {
    item_rng(id, 2).u64_in(0, 40)
}

fn item_cost(id: u32, bin: u32) -> u64 {
    item_rng(id, 3 + bin as u64).u64_in(0, 25)
}

fn item_preferred(id: u32, bins: u32) -> u32 {
    (item_rng(id, 4).u64_in(0, 100) % bins as u64) as u32
}

fn item_incumbent(id: u32, bins: u32) -> u32 {
    (item_rng(id, 5).u64_in(0, 100) % bins as u64) as u32
}

/// Per-(case, bin-count) capacities, generous enough that most instances
/// stay feasible.  Derived, so the fresh and the patched side agree.
fn capacities(case: u64, bins: u32) -> Vec<Vec<u64>> {
    let mut rng = SmallRng::seed_from_u64(0xCAFE ^ case.wrapping_mul(31) ^ bins as u64);
    (0..DIMS)
        .map(|_| (0..bins).map(|_| rng.u64_in(8, 18)).collect())
        .collect()
}

/// `sizes[d][i]` over the live items, in problem order.
fn size_matrix(items: &[u32]) -> Vec<Vec<u64>> {
    let mut sizes: Vec<Vec<u64>> = (0..DIMS).map(|_| Vec::with_capacity(items.len())).collect();
    for &id in items {
        for (d, s) in item_sizes(id).into_iter().enumerate() {
            sizes[d].push(s);
        }
    }
    sizes
}

/// Run the production-shaped search over `vars` (the live variables of
/// `model`, in problem order, one per item of `items`) and return the
/// solution mapped back to problem order, the best cost and the statistics.
///
/// `ranks` follows the optimizer's contract: `None` on a fresh build (slot
/// order *is* problem order), problem-order positions on a patched model.
fn solve(
    model: &Model,
    vars: &[VarId],
    items: &[u32],
    bins: u32,
    ranks: Option<Vec<u64>>,
) -> (Option<Vec<u32>>, Option<i64>, SearchStats) {
    let mut weights = vec![0u64; model.var_count()];
    let mut preferred: Vec<Option<u32>> = vec![None; model.var_count()];
    // Zombies sit at their singleton 0; live slots carry the item's values.
    let mut incumbent = vec![0u32; model.var_count()];
    for (i, (&var, &id)) in vars.iter().zip(items).enumerate() {
        weights[var.0] = item_weight(id);
        preferred[var.0] = Some(item_preferred(id, bins));
        incumbent[var.0] = item_incumbent(id, bins);
        debug_assert!(i < model.var_count());
    }
    let config = SearchConfig {
        variable_selection: VariableSelection::FirstFail {
            weights: Some(weights),
            ranks,
        },
        value_selection: ValueSelection::Preferred(preferred),
        node_limit: Some(200_000),
        incumbent: Some(incumbent),
        restarts: Some(RestartPolicy::luby(32)),
        ..Default::default()
    };
    let cost_vars: Vec<VarId> = vars.to_vec();
    let cost_items: Vec<u32> = items.to_vec();
    let evaluate = move |store: &cwcs_solver::DomainStore| -> i64 {
        cost_vars
            .iter()
            .zip(&cost_items)
            .map(|(&v, &id)| item_cost(id, store.value(v)) as i64)
            .sum()
    };
    let lb_vars: Vec<VarId> = vars.to_vec();
    let lb_items: Vec<u32> = items.to_vec();
    let lower_bound = move |store: &cwcs_solver::DomainStore| -> i64 {
        lb_vars
            .iter()
            .zip(&lb_items)
            .map(|(&v, &id)| {
                store
                    .domain(v)
                    .iter()
                    .map(|b| item_cost(id, b) as i64)
                    .min()
                    .unwrap_or(0)
            })
            .sum()
    };
    let objective = ClosureObjective::new(evaluate, lower_bound);
    let outcome = Search::new(model, config).minimize(&objective);
    let mapped = outcome
        .best
        .map(|solution| vars.iter().map(|&v| solution[v]).collect());
    (mapped, outcome.best_cost, outcome.stats)
}

/// A model kept across diff steps, patched the way the optimizer patches its
/// cached placement model.
struct PatchedState {
    model: Model,
    /// Live `(item, variable)` pairs in problem order.
    vars: Vec<(u32, VarId)>,
    retired: Vec<VarId>,
    slots: PackingSlots,
    bins: u32,
}

/// Build a fresh model over `items` (problem order == slot order).
fn fresh_build(case: u64, items: &[u32], bins: u32) -> PatchedState {
    let mut model = Model::new();
    let vars: Vec<(u32, VarId)> = items
        .iter()
        .map(|&id| (id, model.new_named_var(format!("host({id})"), 0, bins - 1)))
        .collect();
    let ids: Vec<VarId> = vars.iter().map(|&(_, v)| v).collect();
    let slots = MultiDimPacking::post_patchable(
        &mut model,
        &ids,
        &size_matrix(items),
        &capacities(case, bins),
        ALWAYS_DIMS,
    );
    PatchedState {
        model,
        vars,
        retired: Vec::new(),
        slots,
        bins,
    }
}

impl PatchedState {
    /// Patch in place toward the new live item set (the optimizer's
    /// retire / recycle / append protocol).  Panics if the packing slots
    /// refuse the resize — the generator never flips a dimension's
    /// inertness, so a refusal here is a bug.
    fn patch(&mut self, case: u64, items: &[u32], bins: u32) {
        let cached: BTreeMap<u32, VarId> = self.vars.iter().copied().collect();
        let wanted: BTreeSet<u32> = items.iter().copied().collect();
        for &(id, var) in &self.vars {
            if !wanted.contains(&id) {
                self.model.retire_var(var);
                self.retired.push(var);
            }
        }
        let reset_domains = bins != self.bins;
        let hi = bins - 1;
        let mut new_vars = Vec::with_capacity(items.len());
        for &id in items {
            let var = if let Some(&var) = cached.get(&id) {
                if reset_domains {
                    self.model.reset_var(var, 0, hi);
                }
                var
            } else if let Some(var) = self.retired.pop() {
                self.model.reset_var(var, 0, hi);
                self.model.rename_var(var, format!("host({id})"));
                var
            } else {
                self.model.new_named_var(format!("host({id})"), 0, hi)
            };
            new_vars.push((id, var));
        }
        let ids: Vec<VarId> = new_vars.iter().map(|&(_, v)| v).collect();
        let resized = self.slots.resize(
            &mut self.model,
            &ids,
            &size_matrix(items),
            &capacities(case, bins),
            ALWAYS_DIMS,
        );
        assert!(resized, "the generator never changes the posted dimensions");
        self.vars = new_vars;
        self.bins = bins;
    }

    /// Problem-order ranks for the live variables (retired slots unranked).
    fn ranks(&self) -> Vec<u64> {
        let mut r = vec![u64::MAX; self.model.var_count()];
        for (i, &(_, var)) in self.vars.iter().enumerate() {
            r[var.0] = i as u64;
        }
        r
    }
}

fn strip_wall(stats: &SearchStats) -> SearchStats {
    SearchStats {
        elapsed_ms: 0,
        ..stats.clone()
    }
}

/// The core property: after any sequence of random add/remove diffs (with
/// occasional bin-count changes, mirroring candidate-node drift), the
/// patched model solves bit-identically to a fresh build over the same
/// items.
#[test]
fn set_diff_patched_models_solve_bit_identically_to_fresh_builds() {
    let mut exercised_recycle = false;
    let mut exercised_append = false;
    let mut exercised_retire = false;
    for case in 0..CASES as u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1FF ^ case.wrapping_mul(0x51_7CC1));
        let mut bins = rng.u64_in(3, 5) as u32;
        let mut next_id = 0u32;
        let mut live: Vec<u32> = Vec::new();
        for _ in 0..rng.u64_in(4, 8) {
            live.push(next_id);
            next_id += 1;
        }
        let mut patched = fresh_build(case, &live, bins);

        for step in 0..STEPS {
            // Remove up to two random live items, add up to two fresh ones,
            // keeping at least one item alive.
            let removals = rng.u64_in(0, 2).min(live.len() as u64 - 1);
            for _ in 0..removals {
                let at = (rng.u64_in(0, 1000) % live.len() as u64) as usize;
                live.remove(at);
                exercised_retire = true;
            }
            for _ in 0..rng.u64_in(0, 2) {
                live.push(next_id);
                next_id += 1;
                if patched.retired.is_empty() {
                    exercised_append = true;
                } else {
                    exercised_recycle = true;
                }
            }
            live.sort_unstable();
            if rng.u64_in(0, 3) == 0 {
                bins = rng.u64_in(3, 5) as u32;
            }

            patched.patch(case, &live, bins);
            let ranks = patched.ranks();
            let ids: Vec<VarId> = patched.vars.iter().map(|&(_, v)| v).collect();
            let (p_sol, p_cost, p_stats) = solve(&patched.model, &ids, &live, bins, Some(ranks));

            let fresh = fresh_build(case, &live, bins);
            let fresh_ids: Vec<VarId> = fresh.vars.iter().map(|&(_, v)| v).collect();
            let (f_sol, f_cost, f_stats) = solve(&fresh.model, &fresh_ids, &live, bins, None);

            assert_eq!(
                p_sol, f_sol,
                "case {case} step {step}: mapped solution drifted"
            );
            assert_eq!(p_cost, f_cost, "case {case} step {step}: cost drifted");
            assert_eq!(
                strip_wall(&p_stats),
                strip_wall(&f_stats),
                "case {case} step {step}: search statistics drifted"
            );
        }
    }
    // The generator must have covered all three variable fates, or the
    // property proved less than it claims.
    assert!(exercised_retire, "no case ever retired a variable");
    assert!(exercised_recycle, "no case ever recycled a retired slot");
    assert!(exercised_append, "no case ever appended a variable");
}

/// An inertness flip (a dimension whose sizes were all zero growing a
/// nonzero size, or vice versa) cannot be expressed by a patch: the
/// compatibility pre-check must refuse it, and a refused resize must leave
/// the model untouched.
#[test]
fn an_inertness_flip_is_refused_without_touching_the_model() {
    // Third dimension inert at build time: only two constraints posted.
    let items = 4usize;
    let bins = 3u32;
    let mut model = Model::new();
    let vars: Vec<VarId> = (0..items).map(|_| model.new_var(0, bins - 1)).collect();
    let sizes = vec![vec![2u64; items], vec![3u64; items], vec![0u64; items]];
    let caps = vec![vec![10u64; bins as usize]; DIMS];
    let mut slots = MultiDimPacking::post_patchable(&mut model, &vars, &sizes, &caps, ALWAYS_DIMS);
    assert_eq!(slots.posted(), 2, "the inert third dimension is not posted");

    // The new item set wakes the third dimension up.
    let flipped = vec![vec![2u64; items], vec![3u64; items], vec![1u64; items]];
    assert!(
        !slots.dims_compatible(&flipped, ALWAYS_DIMS),
        "the pre-check must catch the flip before any variable is mutated"
    );
    let before_props = model.propagator_count();
    let before_vars = model.var_count();
    assert!(!slots.resize(&mut model, &vars, &flipped, &caps, ALWAYS_DIMS));
    assert_eq!(
        model.propagator_count(),
        before_props,
        "refusal must not post"
    );
    assert_eq!(
        model.var_count(),
        before_vars,
        "refusal must not add variables"
    );
    assert_eq!(slots.posted(), 2, "refusal must not change the slot table");
}
