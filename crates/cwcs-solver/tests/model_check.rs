//! Model-checked concurrency suites for the solver's lock-free core.
//!
//! This file only builds under `RUSTFLAGS="--cfg cwcs_check"`, which routes
//! every atomic in [`cwcs_solver::sync`] through the `cwcs-check` runtime:
//! test bodies run as cooperative threads under a bounded-DFS scheduler with
//! a weak-memory model (per-location store histories), so both interleaving
//! bugs *and* ordering bugs are observable.  See `CONCURRENCY.md` for how to
//! write these tests.
//!
//! Three protocols are covered:
//!
//! * the Chase–Lev deque's **exactly-once** pop/steal invariant, in tiny
//!   configurations (2–3 threads, 1–2 items, rings down to 2 slots);
//! * [`SharedBound`]'s fetch-min **monotonicity** under concurrent publish;
//! * [`PendingCounter`]'s **drain soundness**: observing the counter at zero
//!   proves every published unit of work has completed *and published its
//!   effects*.
//!
//! The `mutation_*` tests only exist under the `cwcs_mutate_take_fence` /
//! `cwcs_mutate_steal_cas` cfgs, which weaken a load-bearing `SeqCst` site
//! in `deque.rs`.  Each asserts the checker *finds* a violation — proof the
//! suite has teeth.  CI runs those builds filtered to `mutation_` so the
//! regular tests (which would rightly fail on a mutated deque) stay out.
#![cfg(cwcs_check)]

use std::sync::Arc;

use cwcs_check::{CheckConfig, Checker};
use cwcs_solver::sync::{thread, AtomicI64, Ordering};
use cwcs_solver::{work_deque, PendingCounter, SharedBound, Steal};

/// A config for the deque state spaces: the protocol has ~40 scheduling
/// points per execution, so an unbounded DFS is hopeless — two preemptions
/// plus a seeded-random tail is the classic CHESS recipe (most concurrency
/// bugs need very few preemptions; both deque mutations need exactly one).
fn deque_config() -> CheckConfig {
    CheckConfig {
        max_executions: 20_000,
        random_tail: 500,
        ..CheckConfig::bounded(2)
    }
}

/// Drive one deque configuration to completion inside the model: push
/// `items` tasks, race `stealers` thieves against the owner's pop loop, and
/// assert every item surfaced exactly once.  Panics (= model violations)
/// on duplication or loss under *any* explored schedule.
fn deque_exactly_once(items: i64, ring: usize, stealers: usize) {
    let (worker, stealer) = work_deque::<i64>(ring, items as usize);
    for i in 0..items {
        worker
            .push(i)
            .unwrap_or_else(|_| panic!("ring sized for the run"));
    }
    let thieves: Vec<_> = (0..stealers)
        .map(|_| {
            let stealer = stealer.clone();
            thread::spawn(move || {
                let mut mine = Vec::new();
                // Retries are bounded: each one means another thread advanced
                // `top`, which happens at most `items` times — so a small cap
                // terminates every schedule without masking a livelock.
                for _ in 0..(items * 2 + 2) {
                    match stealer.steal() {
                        Steal::Success(v) => mine.push(v),
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                }
                mine
            })
        })
        .collect();
    let mut seen = Vec::new();
    while let Some(v) = worker.pop() {
        seen.push(v);
    }
    for thief in thieves {
        seen.extend(thief.join().expect("stealer panicked"));
    }
    // A thief that hit its attempt cap may have left items behind; the
    // post-join drain is sequential, so it recovers them exactly once.
    while let Some(v) = worker.pop() {
        seen.push(v);
    }
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..items).collect::<Vec<i64>>(),
        "an item was lost or taken twice"
    );
}

/// The minimal two-thief configuration: two items, each thief makes exactly
/// one steal attempt while the owner drains.  This is the precise shape in
/// which a `Relaxed` steal CAS duplicates an item (see
/// `mutation_steal_cas_is_detected`); the short body keeps the DFS space
/// small enough for a two-preemption bound.
fn deque_single_attempt_thieves() {
    let (worker, stealer) = work_deque::<i64>(2, 2);
    worker.push(0).expect("ring sized for the run");
    worker.push(1).expect("ring sized for the run");
    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let stealer = stealer.clone();
            thread::spawn(move || match stealer.steal() {
                Steal::Success(v) => Some(v),
                Steal::Retry | Steal::Empty => None,
            })
        })
        .collect();
    let mut seen = Vec::new();
    while let Some(v) = worker.pop() {
        seen.push(v);
    }
    for thief in thieves {
        seen.extend(thief.join().expect("stealer panicked"));
    }
    // A thief that lost its race leaves its item behind; the post-join
    // drain is sequential, so it recovers it exactly once.
    while let Some(v) = worker.pop() {
        seen.push(v);
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1], "an item was lost or taken twice");
}

/// Owner vs one stealer over two items in a two-slot ring: the minimal
/// configuration where the pop fence and the steal CAS are both load-bearing
/// (with a single item the `top` CAS alone arbitrates).
#[test]
fn deque_two_items_one_stealer_exactly_once() {
    Checker::new(deque_config())
        .check(|| deque_exactly_once(2, 2, 1))
        .unwrap_or_else(|v| panic!("deque violates exactly-once:\n{v}"));
}

/// The classic hot spot: exactly one item, owner popping while a thief
/// steals — the `top` CAS must hand it to exactly one side.
#[test]
fn deque_last_item_race_exactly_once() {
    Checker::new(deque_config())
        .check(|| deque_exactly_once(1, 2, 1))
        .unwrap_or_else(|v| panic!("deque duplicates the last item:\n{v}"));
}

/// Three threads: two thieves racing each other *and* the owner.  One
/// preemption keeps the 3-thread space tractable; the seeded-random tail
/// adds schedules beyond the bound.
#[test]
fn deque_two_items_two_stealers_exactly_once() {
    let config = CheckConfig {
        max_executions: 20_000,
        random_tail: 500,
        ..CheckConfig::bounded(1)
    };
    Checker::new(config)
        .check(|| deque_exactly_once(2, 2, 2))
        .unwrap_or_else(|v| panic!("deque violates exactly-once:\n{v}"));
}

/// The unmutated deque survives the exact configuration the steal-CAS
/// mutation fails: the checker has no false positive on the repaired
/// protocol under the same two-preemption budget.
#[test]
fn deque_single_attempt_thieves_exactly_once() {
    Checker::new(deque_config())
        .check(deque_single_attempt_thieves)
        .unwrap_or_else(|v| panic!("deque violates exactly-once:\n{v}"));
}

/// `SharedBound::publish` is a fetch-min: no observer ever sees the bound
/// rise, and the final bound is the global minimum of everything published.
#[test]
fn shared_bound_fetch_min_is_monotone() {
    Checker::new(CheckConfig::bounded(2))
        .check(|| {
            let bound = SharedBound::new();
            let remote = bound.clone();
            let racer = thread::spawn(move || {
                remote.publish(40);
                remote.publish(25);
            });
            let first = bound.best_cost();
            bound.publish(30);
            let second = bound.best_cost();
            if let (Some(a), Some(b)) = (first, second) {
                assert!(b <= a, "bound rose from {a} to {b} at one observer");
            }
            racer.join().expect("publisher panicked");
            assert_eq!(
                bound.best_cost(),
                Some(25),
                "final bound must be the global minimum"
            );
        })
        .unwrap_or_else(|v| panic!("SharedBound violates monotonicity:\n{v}"));
}

/// Cancellation is sticky: once any thread raises it, every later observer
/// (after a join) sees it.
#[test]
fn shared_bound_cancel_is_sticky() {
    Checker::new(CheckConfig::bounded(2))
        .check(|| {
            let bound = SharedBound::new();
            let remote = bound.clone();
            let canceller = thread::spawn(move || remote.cancel());
            canceller.join().expect("canceller panicked");
            assert!(bound.is_cancelled(), "cancel lost after join");
        })
        .unwrap_or_else(|v| panic!("SharedBound loses cancellation:\n{v}"));
}

/// Drain soundness of the portfolio's pending-checkpoint counter: the
/// coordinator seeds one `publish` per unit of work *before* the workers
/// start (the over-approximation invariant), each worker publishes its
/// result and then `complete`s, and any observer that sees `drained()`
/// must also see every result — the `AcqRel`/`Acquire` edge carries them.
#[test]
fn pending_counter_drain_is_sound() {
    Checker::new(CheckConfig::bounded(2))
        .check(|| {
            let pending = Arc::new(PendingCounter::new());
            let results: Vec<Arc<AtomicI64>> =
                (0..2).map(|_| Arc::new(AtomicI64::new(0))).collect();
            // Seeded before spawn: the counter over-approximates from the
            // start, so `drained()` can never be observed early.
            pending.publish();
            pending.publish();
            let workers: Vec<_> = results
                .iter()
                .map(|slot| {
                    let slot = Arc::clone(slot);
                    let pending = Arc::clone(&pending);
                    thread::spawn(move || {
                        // relaxed: the `complete` below (AcqRel) publishes
                        // this result to whoever observes `drained()`.
                        slot.store(7, Ordering::Relaxed);
                        pending.complete();
                    })
                })
                .collect();
            if pending.drained() {
                for (i, slot) in results.iter().enumerate() {
                    // relaxed: ordered by the drained() Acquire edge above.
                    assert_eq!(
                        slot.load(Ordering::Relaxed),
                        7,
                        "drained() observed but worker {i}'s result is stale"
                    );
                }
            }
            for worker in workers {
                worker.join().expect("worker panicked");
            }
        })
        .unwrap_or_else(|v| panic!("PendingCounter drain is unsound:\n{v}"));
}

/// A failed donation retracts its publish; the counter still drains to
/// exactly zero and never goes negative (u64 wrap would read as huge).
#[test]
fn pending_counter_retract_balances() {
    Checker::new(CheckConfig::bounded(2))
        .check(|| {
            let pending = Arc::new(PendingCounter::new());
            pending.publish();
            pending.publish();
            let remote = Arc::clone(&pending);
            let worker = thread::spawn(move || {
                // This worker's push failed: retract instead of complete.
                remote.retract();
            });
            pending.complete();
            worker.join().expect("worker panicked");
            assert!(pending.drained(), "balanced counter must drain");
            assert_eq!(pending.outstanding(), 0);
        })
        .unwrap_or_else(|v| panic!("PendingCounter retract is unsound:\n{v}"));
}

/// Teeth check: with pop's `SeqCst` fence weakened to `Release`, the owner
/// can miss a stealer's `top` advance and hand out an already-stolen item.
/// The checker must find that schedule.  (Two items: the one-item path is
/// immune — the CAS arbitrates it.)
#[cfg(cwcs_mutate_take_fence)]
#[test]
fn mutation_take_fence_is_detected() {
    let violation = Checker::new(deque_config())
        .check(|| deque_exactly_once(2, 2, 1))
        .expect_err("weakened pop fence must be caught by the model checker");
    assert!(
        !violation.trace.is_empty(),
        "violation should carry a schedule trace"
    );
}

/// Teeth check: with the steal CAS weakened to `Relaxed`, a claim never
/// enters the SeqCst order the pop fence synchronizes with, so the owner
/// can miss it even with the fence intact.  A *single* stealer cannot show
/// this — its own `SeqCst` fence runs at the start of each steal, so every
/// CAS but the last leaks into the SC order and the owner stale-reads `top`
/// by at most one, which CAS atomicity repairs.  Two stealers doing one
/// claim each leave both claims outside the SC order: the owner can read
/// `top == 0` after both items are gone and hand out `ring[1]` twice.
#[cfg(cwcs_mutate_steal_cas)]
#[test]
fn mutation_steal_cas_is_detected() {
    let violation = Checker::new(deque_config())
        .check(deque_single_attempt_thieves)
        .expect_err("relaxed steal CAS must be caught by the model checker");
    assert!(
        !violation.trace.is_empty(),
        "violation should carry a schedule trace"
    );
}
