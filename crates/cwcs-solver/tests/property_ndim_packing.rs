//! Property-based tests of the N-dimensional packing model: every assignment
//! the solver returns is viable on **every** resource dimension, and a model
//! whose third dimension is zeroed is bit-identical — same search values,
//! same statistics — to the hand-built 2-dimensional model.  The latter is
//! the guard that the resource-stack generalization cannot drift the
//! behavior of the paper's original (CPU, memory) experiments.
//!
//! Exercised over seeded randomized instances (the container has no
//! crates.io access, so `proptest` is replaced by a deterministic
//! [`SmallRng`] driver — same seed, same cases, every run).

use cwcs_model::SmallRng;
use cwcs_solver::constraints::{BinPacking, MultiDimPacking};
use cwcs_solver::search::{ClosureObjective, Search, SearchConfig, SearchStats};
use cwcs_solver::{Model, VarId};

const CASES: usize = 64;
const DIMS: usize = 3;

struct Instance {
    /// `sizes[d][i]`: size of item `i` on dimension `d`.
    sizes: Vec<Vec<u64>>,
    /// `capacities[d][b]`: capacity of bin `b` on dimension `d`.
    capacities: Vec<Vec<u64>>,
    /// `costs[i][b]`: cost of putting item `i` into bin `b`.
    costs: Vec<Vec<u64>>,
}

/// A random 3-dimensional packing instance.  Capacities are drawn generous
/// enough that most instances are feasible (infeasible ones still exercise
/// the per-dimension failure path).
fn arbitrary_instance(rng: &mut SmallRng, third_dim_zero: bool) -> Instance {
    let items = rng.u64_in(2, 7) as usize;
    let bins = rng.u64_in(2, 4) as usize;
    let mut sizes = Vec::with_capacity(DIMS);
    let mut capacities = Vec::with_capacity(DIMS);
    for d in 0..DIMS {
        let zero = d == DIMS - 1 && third_dim_zero;
        sizes.push(
            (0..items)
                .map(|_| if zero { 0 } else { rng.u64_in(0, 6) })
                .collect(),
        );
        capacities.push(
            (0..bins)
                .map(|_| if zero { 0 } else { rng.u64_in(4, 12) })
                .collect(),
        );
    }
    let costs = (0..items)
        .map(|_| (0..bins).map(|_| rng.u64_in(0, 20)).collect())
        .collect();
    Instance {
        sizes,
        capacities,
        costs,
    }
}

/// Build the model with one packing constraint per dimension and minimize
/// the placement cost.  Returns the best assignment and the statistics.
fn solve_multi_dim(
    instance: &Instance,
    dims: usize,
) -> (Option<Vec<u32>>, Option<i64>, SearchStats) {
    let items = instance.costs.len();
    let mut model = Model::new();
    let bins = instance.capacities[0].len() as u32;
    let vars: Vec<VarId> = (0..items).map(|_| model.new_var(0, bins - 1)).collect();
    MultiDimPacking::post(
        &mut model,
        &vars,
        &instance.sizes[..dims],
        &instance.capacities[..dims],
        2,
    );
    let costs = instance.costs.clone();
    let eval_vars = vars.clone();
    let evaluate = move |store: &cwcs_solver::DomainStore| -> i64 {
        eval_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| costs[i][store.value(v) as usize] as i64)
            .sum()
    };
    let costs_lb = instance.costs.clone();
    let lb_vars = vars.clone();
    let lower_bound = move |store: &cwcs_solver::DomainStore| -> i64 {
        lb_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                store
                    .domain(v)
                    .iter()
                    .map(|b| costs_lb[i][b as usize] as i64)
                    .min()
                    .unwrap_or(0)
            })
            .sum()
    };
    let objective = ClosureObjective::new(evaluate, lower_bound);
    let outcome = Search::new(&model, SearchConfig::default()).minimize(&objective);
    let assignment = outcome
        .best
        .map(|solution| vars.iter().map(|&v| solution[v]).collect());
    (assignment, outcome.best_cost, outcome.stats)
}

/// Every assignment the solver returns respects every dimension's capacity
/// on every bin.
#[test]
fn solved_assignments_are_viable_on_every_dimension() {
    let mut rng = SmallRng::seed_from_u64(0x003D_9ACC);
    let mut solved = 0;
    for case in 0..CASES {
        let instance = arbitrary_instance(&mut rng, false);
        let (assignment, _, _) = solve_multi_dim(&instance, DIMS);
        let Some(assignment) = assignment else {
            continue;
        };
        solved += 1;
        for (d, (dim_sizes, dim_caps)) in
            instance.sizes.iter().zip(&instance.capacities).enumerate()
        {
            let mut load = vec![0u64; dim_caps.len()];
            for (i, &bin) in assignment.iter().enumerate() {
                load[bin as usize] += dim_sizes[i];
            }
            for (bin, (&l, &c)) in load.iter().zip(dim_caps).enumerate() {
                assert!(
                    l <= c,
                    "case {case}: dimension {d} overloaded on bin {bin}: {l} > {c}"
                );
            }
        }
    }
    assert!(
        solved >= CASES / 2,
        "the generator must produce mostly feasible instances ({solved}/{CASES} solved)"
    );
}

/// With the third dimension zeroed, the N-dimensional build must produce the
/// **same model** as the legacy hand-built 2-constraint one: identical best
/// assignment, identical best cost, identical search statistics (the
/// wall-clock field aside).  This is the no-behavioral-drift guard of the
/// refactor.
#[test]
fn zeroed_third_dimension_is_bit_identical_to_the_two_dim_solve() {
    let mut rng = SmallRng::seed_from_u64(0x2D3D);
    for case in 0..CASES {
        let instance = arbitrary_instance(&mut rng, true);

        // N-dimensional build over all three dimensions (the third inert).
        let (assignment_3d, cost_3d, stats_3d) = solve_multi_dim(&instance, DIMS);

        // Legacy build: exactly two hand-posted BinPacking constraints.
        let items = instance.costs.len();
        let mut model = Model::new();
        let bins = instance.capacities[0].len() as u32;
        let vars: Vec<VarId> = (0..items).map(|_| model.new_var(0, bins - 1)).collect();
        for d in 0..2 {
            model.post(BinPacking::new(
                vars.clone(),
                instance.sizes[d].clone(),
                instance.capacities[d].clone(),
            ));
        }
        let costs = instance.costs.clone();
        let eval_vars = vars.clone();
        let evaluate = move |store: &cwcs_solver::DomainStore| -> i64 {
            eval_vars
                .iter()
                .enumerate()
                .map(|(i, &v)| costs[i][store.value(v) as usize] as i64)
                .sum()
        };
        let costs_lb = instance.costs.clone();
        let lb_vars = vars.clone();
        let lower_bound = move |store: &cwcs_solver::DomainStore| -> i64 {
            lb_vars
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    store
                        .domain(v)
                        .iter()
                        .map(|b| costs_lb[i][b as usize] as i64)
                        .min()
                        .unwrap_or(0)
                })
                .sum()
        };
        let objective = ClosureObjective::new(evaluate, lower_bound);
        let outcome = Search::new(&model, SearchConfig::default()).minimize(&objective);
        let assignment_2d: Option<Vec<u32>> = outcome
            .best
            .map(|solution| vars.iter().map(|&v| solution[v]).collect());

        assert_eq!(
            assignment_3d, assignment_2d,
            "case {case}: search values drifted"
        );
        assert_eq!(cost_3d, outcome.best_cost, "case {case}: cost drifted");
        let strip_wall = |stats: &SearchStats| SearchStats {
            elapsed_ms: 0,
            ..stats.clone()
        };
        assert_eq!(
            strip_wall(&stats_3d),
            strip_wall(&outcome.stats),
            "case {case}: search statistics drifted"
        );
    }
}
