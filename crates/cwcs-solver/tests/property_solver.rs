//! Property-based tests of the constraint solver: soundness of propagation
//! (no feasible value is ever pruned), completeness of search on small
//! instances, and optimality of branch & bound.
//!
//! The properties are exercised over seeded randomized instances (the
//! container has no crates.io access, so `proptest` is replaced by a
//! deterministic [`SmallRng`] driver — same seed, same cases, every run).

use cwcs_model::SmallRng;
use cwcs_solver::constraints::{AllDifferent, BinPacking, Knapsack, LinearLeq};
use cwcs_solver::search::{ClosureObjective, Search, SearchConfig};
use cwcs_solver::{DomainStore, Model, VarId};

const CASES: usize = 64;

/// Brute-force enumeration of the assignments of `domains` (small sizes only)
/// that satisfy `check`.
fn brute_force<F: Fn(&[u32]) -> bool>(domains: &[Vec<u32>], check: F) -> Vec<Vec<u32>> {
    let mut solutions = Vec::new();
    let mut assignment = vec![0u32; domains.len()];
    fn recurse<F: Fn(&[u32]) -> bool>(
        domains: &[Vec<u32>],
        index: usize,
        assignment: &mut Vec<u32>,
        check: &F,
        out: &mut Vec<Vec<u32>>,
    ) {
        if index == domains.len() {
            if check(assignment) {
                out.push(assignment.clone());
            }
            return;
        }
        for &value in &domains[index] {
            assignment[index] = value;
            recurse(domains, index + 1, assignment, check, out);
        }
    }
    recurse(domains, 0, &mut assignment, &check, &mut solutions);
    solutions
}

/// Random vector of `len in len_range` values drawn from `lo..hi`.
fn random_vec(rng: &mut SmallRng, len_lo: usize, len_hi: usize, lo: u64, hi: u64) -> Vec<u64> {
    let len = rng.u64_in(len_lo as u64, len_hi as u64) as usize;
    (0..len).map(|_| rng.u64_in(lo, hi)).collect()
}

/// Bin packing: the solver finds a solution exactly when brute force does,
/// and every solution it returns satisfies the capacities.
#[test]
fn bin_packing_agrees_with_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0xB1);
    for case in 0..CASES {
        let sizes = random_vec(&mut rng, 1, 5, 1, 5);
        let capacities = random_vec(&mut rng, 1, 4, 1, 8);

        let mut model = Model::new();
        let n_bins = capacities.len() as u32;
        let vars: Vec<VarId> = (0..sizes.len())
            .map(|_| model.new_var(0, n_bins - 1))
            .collect();
        model.post(BinPacking::new(
            vars.clone(),
            sizes.clone(),
            capacities.clone(),
        ));
        let solution = Search::new(&model, SearchConfig::default()).solve();

        let domains: Vec<Vec<u32>> = (0..sizes.len()).map(|_| (0..n_bins).collect()).collect();
        let reference = brute_force(&domains, |assignment| {
            let mut load = vec![0u64; capacities.len()];
            for (i, &bin) in assignment.iter().enumerate() {
                load[bin as usize] += sizes[i];
            }
            load.iter().zip(&capacities).all(|(l, c)| l <= c)
        });

        assert_eq!(
            solution.is_some(),
            !reference.is_empty(),
            "case {case}: sizes {sizes:?} capacities {capacities:?}"
        );
        if let Some(solution) = solution {
            let mut load = vec![0u64; capacities.len()];
            for (i, &var) in vars.iter().enumerate() {
                load[solution[var] as usize] += sizes[i];
            }
            for (l, c) in load.iter().zip(&capacities) {
                assert!(l <= c, "case {case}: overloaded bin");
            }
        }
    }
}

/// Knapsack propagation is sound: it never removes a value that appears in
/// some satisfying assignment.
#[test]
fn knapsack_propagation_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0x4B);
    for case in 0..CASES {
        let weights = random_vec(&mut rng, 1, 6, 1, 6);
        let bound_frac = rng.u64_in(0, 100);
        let total: u64 = weights.iter().sum();
        let hi = total * bound_frac / 100;

        let mut model = Model::new();
        let vars: Vec<VarId> = (0..weights.len()).map(|_| model.new_var(0, 1)).collect();
        model.post(Knapsack::at_most(vars.clone(), weights.clone(), hi));

        // Reference: which assignments satisfy the bound?
        let domains: Vec<Vec<u32>> = (0..weights.len()).map(|_| vec![0, 1]).collect();
        let reference = brute_force(&domains, |assignment| {
            assignment
                .iter()
                .enumerate()
                .map(|(i, &v)| weights[i] * v as u64)
                .sum::<u64>()
                <= hi
        });

        let solutions = Search::new(&model, SearchConfig::default()).solve_all(1_000);
        assert_eq!(
            solutions.len(),
            reference.len(),
            "case {case}: weights {weights:?} bound {hi}: solution counts must match"
        );
    }
}

/// Linear inequalities: every enumerated solution satisfies the bound and
/// the count matches brute force.
#[test]
fn linear_leq_enumeration_matches_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0x1E);
    for case in 0..CASES {
        let coefficients = random_vec(&mut rng, 1, 4, 0, 4);
        let bound = rng.u64_in(0, 10);
        let domain_max = rng.u64_in(1, 4) as u32;

        let mut model = Model::new();
        let vars: Vec<VarId> = (0..coefficients.len())
            .map(|_| model.new_var(0, domain_max))
            .collect();
        model.post(LinearLeq::new(vars.clone(), coefficients.clone(), bound));
        let solutions = Search::new(&model, SearchConfig::default()).solve_all(100_000);

        let domains: Vec<Vec<u32>> = (0..coefficients.len())
            .map(|_| (0..=domain_max).collect())
            .collect();
        let reference = brute_force(&domains, |assignment| {
            assignment
                .iter()
                .enumerate()
                .map(|(i, &v)| coefficients[i] * v as u64)
                .sum::<u64>()
                <= bound
        });
        assert_eq!(
            solutions.len(),
            reference.len(),
            "case {case}: coefficients {coefficients:?} bound {bound} max {domain_max}"
        );
    }
}

/// Branch & bound returns the true optimum on small all-different
/// weighted-assignment problems.
#[test]
fn minimize_finds_the_true_optimum() {
    let mut rng = SmallRng::seed_from_u64(0xBB);
    for case in 0..CASES {
        // 3 variables over values {0,1,2}, all different, minimise the sum of
        // per-variable value costs.
        let costs: Vec<Vec<i64>> = (0..3)
            .map(|_| (0..3).map(|_| rng.u64_in(0, 20) as i64).collect())
            .collect();

        let mut model = Model::new();
        let vars: Vec<VarId> = (0..3).map(|_| model.new_var(0, 2)).collect();
        model.post(AllDifferent::new(vars.clone()));
        let cost_table = costs.clone();
        let vars_for_eval = vars.clone();
        let objective = ClosureObjective::new(
            move |store: &DomainStore| {
                vars_for_eval
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| cost_table[i][store.value(v) as usize])
                    .sum()
            },
            |_| i64::MIN,
        );
        let outcome = Search::new(&model, SearchConfig::default()).minimize(&objective);
        let best = outcome.best_cost.expect("a permutation always exists");

        // Brute force over the 6 permutations.
        let mut reference = i64::MAX;
        for p in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let cost: i64 = (0..3).map(|i| costs[i][p[i] as usize]).sum();
            reference = reference.min(cost);
        }
        assert_eq!(best, reference, "case {case}: costs {costs:?}");
        assert!(outcome.stats.completed, "case {case}: search must complete");
    }
}
