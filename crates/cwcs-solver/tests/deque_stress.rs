//! Seeded multi-thread stress tests of the Chase–Lev work-stealing deque —
//! the stand-in for a `loom`-style model checker (this workspace has no
//! crates.io access).  The invariant under every schedule: **every pushed
//! item is popped or stolen exactly once** — no loss, no duplication.
//!
//! The owner thread churns push/pop with a seeded duty cycle while several
//! stealer threads spin; varying the seed, the stealer count and the ring
//! size across cases explores many interleavings, and the run repeats every
//! case a few times so a scheduling-dependent bug has many chances to show.

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::thread;

use cwcs_solver::sync::{AtomicBool, Ordering};
use cwcs_solver::{work_deque, Steal};

/// xorshift64* — the same tiny deterministic generator the portfolio's
/// randomized rider uses.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// One stress case: `pushes` items through a deque of `ring` slots, with
/// `stealers` concurrent thieves, the owner interleaving pushes and pops
/// under a seeded duty cycle.  Returns nothing; panics on any violation.
fn stress_case(seed: u64, stealers: usize, ring: usize, pushes: u64) {
    let (worker, stealer) = work_deque::<u64>(ring, pushes as usize);
    let done = AtomicBool::new(false);
    let stolen: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let mut popped: Vec<u64> = Vec::new();

    thread::scope(|scope| {
        for _ in 0..stealers {
            let stealer = stealer.clone();
            let done = &done;
            let stolen = &stolen;
            scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    match stealer.steal() {
                        Steal::Success(v) => mine.push(v),
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && stealer.is_empty() {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                }
                stolen.lock().unwrap().extend(mine);
            });
        }

        // Owner: seeded push/pop churn.  The duty cycle (how many pushes
        // before a pop, whether to drain a burst) varies with the seed so
        // different cases exercise different owner/stealer phase patterns.
        let mut rng = XorShift::new(seed);
        let mut next = 0u64;
        while next < pushes {
            let burst = 1 + rng.next() % 7;
            for _ in 0..burst {
                if next >= pushes {
                    break;
                }
                if worker.push(next).is_ok() {
                    next += 1;
                } else {
                    // Ring full: drain one and keep it as "popped".
                    popped.extend(worker.pop());
                }
            }
            let drains = rng.next() % 3;
            for _ in 0..drains {
                popped.extend(worker.pop());
            }
        }
        // Drain what the stealers leave behind.
        while let Some(v) = worker.pop() {
            popped.push(v);
        }
        done.store(true, Ordering::Release);
    });

    let stolen = stolen.into_inner().unwrap();
    let mut seen: Vec<u64> = popped.iter().chain(stolen.iter()).copied().collect();
    seen.sort_unstable();
    let unique: BTreeSet<u64> = seen.iter().copied().collect();
    assert_eq!(
        unique.len(),
        seen.len(),
        "seed {seed}/{stealers} stealers: an item was taken twice"
    );
    assert_eq!(
        seen,
        (0..pushes).collect::<Vec<u64>>(),
        "seed {seed}/{stealers} stealers: an item was lost"
    );
}

#[test]
fn every_item_is_popped_or_stolen_exactly_once() {
    // 3 repeats × 8 seeded cases, stealer counts 1–4, ring sizes down to 8
    // (tiny rings wrap constantly, the hardest regime for the index ring).
    for repeat in 0..3u64 {
        for case in 0..8u64 {
            let seed = 0xDEC0 + repeat * 1_000 + case;
            let stealers = 1 + (case % 4) as usize;
            let ring = [8usize, 32, 256][(case % 3) as usize];
            stress_case(seed, stealers, ring, 20_000);
        }
    }
}

#[test]
fn last_item_races_are_never_duplicated() {
    // The classic Chase–Lev hot spot: a deque holding exactly one item,
    // with the owner popping while stealers grab.  Run many one-item
    // rounds; each item must surface exactly once.
    for seed in 0..16u64 {
        stress_case(seed ^ 0x51EA_15EA, 4, 2, 4_000);
    }
}
