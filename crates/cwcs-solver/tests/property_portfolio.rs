//! Property-based tests of the parallel portfolio search (seeded random
//! instances, like `property_solver.rs`):
//!
//! * a portfolio never returns a worse cost than the single-threaded search
//!   given the same per-run budget (worker 0 *is* that search, and the
//!   reduction takes the minimum);
//! * a 1-worker portfolio is bit-identical to the plain search in
//!   deterministic mode — same solution, same cost, same statistics.

use cwcs_model::SmallRng;
use cwcs_solver::constraints::BinPacking;
use cwcs_solver::portfolio::{PortfolioConfig, PortfolioSearch};
use cwcs_solver::search::{ClosureObjective, RestartPolicy, Search, SearchConfig, ValueSelection};
use cwcs_solver::{DomainStore, Model, Objective, VarId};

const CASES: usize = 32;

/// A random placement-like instance: items packed into bins under a
/// capacity constraint, minimising a random per-(item, bin) cost table —
/// the same shape as the optimizer's move-cost objective.
struct Instance {
    model: Model,
    vars: Vec<VarId>,
    costs: Vec<Vec<i64>>,
}

fn random_instance(rng: &mut SmallRng) -> Instance {
    let items = rng.u64_in(3, 7) as usize;
    let bins = rng.u64_in(2, 4) as usize;
    let sizes: Vec<u64> = (0..items).map(|_| rng.u64_in(1, 4)).collect();
    // Capacities sized so the instance is usually feasible but not loose.
    let total: u64 = sizes.iter().sum();
    let capacities: Vec<u64> = (0..bins)
        .map(|_| rng.u64_in(total / bins as u64 + 1, total))
        .collect();
    let mut model = Model::new();
    let vars: Vec<VarId> = (0..items)
        .map(|_| model.new_var(0, bins as u32 - 1))
        .collect();
    model.post(BinPacking::new(vars.clone(), sizes, capacities));
    let costs: Vec<Vec<i64>> = (0..items)
        .map(|_| (0..bins).map(|_| rng.u64_in(0, 50) as i64).collect())
        .collect();
    Instance { model, vars, costs }
}

fn objective(instance: &Instance) -> impl Objective + Sync + '_ {
    let vars = instance.vars.clone();
    let costs = &instance.costs;
    ClosureObjective::new(
        move |store: &DomainStore| {
            vars.iter()
                .enumerate()
                .map(|(i, &v)| costs[i][store.value(v) as usize])
                .sum()
        },
        |_| 0,
    )
}

fn budgeted_config(node_limit: u64) -> SearchConfig {
    SearchConfig {
        node_limit: Some(node_limit),
        restarts: Some(RestartPolicy::luby(4)),
        ..Default::default()
    }
}

#[test]
fn portfolio_never_costs_more_than_the_serial_search() {
    let mut rng = SmallRng::seed_from_u64(0xF0);
    for case in 0..CASES {
        let instance = random_instance(&mut rng);
        let objective = objective(&instance);
        let node_limit = rng.u64_in(5, 60);
        let serial = Search::new(&instance.model, budgeted_config(node_limit)).minimize(&objective);
        for workers in [2usize, 4] {
            let race = PortfolioConfig {
                workers,
                deterministic: true,
                ..Default::default()
            };
            let portfolio =
                PortfolioSearch::new(&instance.model, budgeted_config(node_limit), race)
                    .minimize(&objective);
            match (serial.best_cost, portfolio.best_cost) {
                (Some(s), Some(p)) => assert!(
                    p <= s,
                    "case {case}: {workers}-worker portfolio cost {p} beats serial {s}?"
                ),
                (Some(s), None) => {
                    panic!("case {case}: portfolio lost the serial solution of cost {s}")
                }
                // Serial found nothing within the budget: any portfolio
                // outcome (including none) is at least as good.
                (None, _) => {}
            }
        }
    }
}

#[test]
fn one_worker_portfolio_is_bit_identical_to_the_plain_search() {
    let mut rng = SmallRng::seed_from_u64(0xF1);
    for case in 0..CASES {
        let instance = random_instance(&mut rng);
        let objective = objective(&instance);
        // A preferred-value ordering and a tight budget, like the optimizer.
        let preferred: Vec<Option<u32>> = instance
            .vars
            .iter()
            .map(|_| Some(rng.u64_in(0, 1) as u32))
            .collect();
        let config = SearchConfig {
            value_selection: ValueSelection::Preferred(preferred),
            node_limit: Some(rng.u64_in(5, 40)),
            restarts: Some(RestartPolicy::luby(2)),
            ..Default::default()
        };
        let serial = Search::new(&instance.model, config.clone()).minimize(&objective);
        let race = PortfolioConfig {
            workers: 1,
            deterministic: true,
            ..Default::default()
        };
        let portfolio = PortfolioSearch::new(&instance.model, config, race).minimize(&objective);
        assert_eq!(serial.best_cost, portfolio.best_cost, "case {case}");
        assert_eq!(
            serial.best.as_ref().map(|s| s.values().to_vec()),
            portfolio.best.as_ref().map(|s| s.values().to_vec()),
            "case {case}: the explored tree must be identical"
        );
        let worker = &portfolio.portfolio.workers[0].stats;
        assert_eq!(serial.stats.nodes, worker.nodes, "case {case}");
        assert_eq!(serial.stats.failures, worker.failures, "case {case}");
        assert_eq!(serial.stats.solutions, worker.solutions, "case {case}");
        assert_eq!(serial.stats.restarts, worker.restarts, "case {case}");
        assert_eq!(serial.stats.completed, worker.completed, "case {case}");
        assert_eq!(
            serial.stats.incumbent_kept, worker.incumbent_kept,
            "case {case}"
        );
    }
}
