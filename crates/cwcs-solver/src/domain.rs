//! Finite integer domains represented as bitsets.
//!
//! A domain holds a set of candidate values for one variable, all within
//! `[0, capacity)`.  The placement model of `cwcs-core` uses node indices as
//! values, so a capacity of a few hundred is typical; the bitset fits in a
//! handful of 64-bit words and cloning a whole domain store per search node
//! stays cheap.

/// A finite domain of `u32` values stored as a bitset, with cached bounds and
/// cardinality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntDomain {
    words: Vec<u64>,
    size: u32,
    min: u32,
    max: u32,
}

impl IntDomain {
    /// Domain containing every value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    pub fn range(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "empty initial domain [{lo}, {hi}]");
        let n_words = (hi as usize / 64) + 1;
        let mut words = vec![0u64; n_words];
        for v in lo..=hi {
            words[(v / 64) as usize] |= 1u64 << (v % 64);
        }
        IntDomain {
            words,
            size: hi - lo + 1,
            min: lo,
            max: hi,
        }
    }

    /// Domain containing exactly the given values.
    ///
    /// # Panics
    /// Panics when `values` is empty.
    pub fn from_values(values: &[u32]) -> Self {
        assert!(!values.is_empty(), "empty initial domain");
        let max = *values.iter().max().unwrap();
        let n_words = (max as usize / 64) + 1;
        let mut words = vec![0u64; n_words];
        let mut size = 0;
        for &v in values {
            let w = (v / 64) as usize;
            let bit = 1u64 << (v % 64);
            if words[w] & bit == 0 {
                words[w] |= bit;
                size += 1;
            }
        }
        let min = *values.iter().min().unwrap();
        IntDomain {
            words,
            size,
            min,
            max,
        }
    }

    /// Domain reduced to a single value.
    pub fn singleton(value: u32) -> Self {
        IntDomain::range(value, value)
    }

    /// Number of values still in the domain.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// True when only one value remains.
    pub fn is_fixed(&self) -> bool {
        self.size == 1
    }

    /// True when no value remains (the domain has been wiped out).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Smallest value still in the domain.
    ///
    /// # Panics
    /// Panics on an empty domain.
    pub fn min(&self) -> u32 {
        assert!(!self.is_empty(), "min() on empty domain");
        self.min
    }

    /// Largest value still in the domain.
    ///
    /// # Panics
    /// Panics on an empty domain.
    pub fn max(&self) -> u32 {
        assert!(!self.is_empty(), "max() on empty domain");
        self.max
    }

    /// The unique remaining value of a fixed domain.
    ///
    /// # Panics
    /// Panics when the domain is not fixed.
    pub fn value(&self) -> u32 {
        assert!(self.is_fixed(), "value() on unfixed domain");
        self.min
    }

    /// True when `value` is still a candidate.
    pub fn contains(&self, value: u32) -> bool {
        let w = (value / 64) as usize;
        w < self.words.len() && self.words[w] & (1u64 << (value % 64)) != 0
    }

    /// Remove `value` from the domain.  Returns `true` when the domain
    /// changed.
    pub fn remove(&mut self, value: u32) -> bool {
        if !self.contains(value) {
            return false;
        }
        let w = (value / 64) as usize;
        self.words[w] &= !(1u64 << (value % 64));
        self.size -= 1;
        if !self.is_empty() {
            if value == self.min {
                self.min = self.first_at_or_above(value + 1).unwrap();
            }
            if value == self.max {
                self.max = self.last_at_or_below(value.saturating_sub(1)).unwrap();
            }
        }
        true
    }

    /// Reduce the domain to the single value `value`.  Returns `true` when
    /// the domain changed, `false` when it was already that singleton.  If
    /// `value` is not in the domain the domain becomes empty.
    pub fn assign(&mut self, value: u32) -> bool {
        if self.is_fixed() && self.min == value {
            return false;
        }
        if !self.contains(value) {
            // wipe out
            for w in &mut self.words {
                *w = 0;
            }
            self.size = 0;
            return true;
        }
        for w in &mut self.words {
            *w = 0;
        }
        self.words[(value / 64) as usize] = 1u64 << (value % 64);
        self.size = 1;
        self.min = value;
        self.max = value;
        true
    }

    /// Remove every value strictly below `bound`.  Returns `true` when the
    /// domain changed.
    pub fn remove_below(&mut self, bound: u32) -> bool {
        let mut changed = false;
        while !self.is_empty() && self.min < bound {
            let v = self.min;
            self.remove(v);
            changed = true;
        }
        changed
    }

    /// Remove every value strictly above `bound`.  Returns `true` when the
    /// domain changed.
    pub fn remove_above(&mut self, bound: u32) -> bool {
        let mut changed = false;
        while !self.is_empty() && self.max > bound {
            let v = self.max;
            self.remove(v);
            changed = true;
        }
        changed
    }

    /// Iterate over the remaining values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let min = if self.is_empty() { 1 } else { self.min };
        let max = if self.is_empty() { 0 } else { self.max };
        (min..=max).filter(move |&v| self.contains(v))
    }

    /// Collect the remaining values in increasing order.
    pub fn values(&self) -> Vec<u32> {
        self.iter().collect()
    }

    fn first_at_or_above(&self, from: u32) -> Option<u32> {
        (from..=self.words.len() as u32 * 64 - 1).find(|&v| self.contains(v))
    }

    fn last_at_or_below(&self, from: u32) -> Option<u32> {
        (0..=from).rev().find(|&v| self.contains(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_domain_basics() {
        let d = IntDomain::range(2, 5);
        assert_eq!(d.size(), 4);
        assert_eq!(d.min(), 2);
        assert_eq!(d.max(), 5);
        assert!(!d.is_fixed());
        assert!(d.contains(3));
        assert!(!d.contains(1));
        assert!(!d.contains(6));
        assert_eq!(d.values(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn from_values_deduplicates() {
        let d = IntDomain::from_values(&[7, 3, 3, 90]);
        assert_eq!(d.size(), 3);
        assert_eq!(d.min(), 3);
        assert_eq!(d.max(), 90);
        assert_eq!(d.values(), vec![3, 7, 90]);
    }

    #[test]
    fn remove_updates_bounds() {
        let mut d = IntDomain::range(0, 4);
        assert!(d.remove(0));
        assert_eq!(d.min(), 1);
        assert!(d.remove(4));
        assert_eq!(d.max(), 3);
        assert!(!d.remove(0), "removing an absent value is a no-op");
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn remove_middle_keeps_bounds() {
        let mut d = IntDomain::range(0, 4);
        d.remove(2);
        assert_eq!(d.min(), 0);
        assert_eq!(d.max(), 4);
        assert_eq!(d.values(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn assign_and_wipeout() {
        let mut d = IntDomain::range(0, 10);
        assert!(d.assign(7));
        assert!(d.is_fixed());
        assert_eq!(d.value(), 7);
        assert!(!d.assign(7), "re-assigning the same value is a no-op");
        let mut d = IntDomain::range(0, 3);
        d.assign(9); // not in the domain: wipe out
        assert!(d.is_empty());
    }

    #[test]
    fn remove_below_and_above() {
        let mut d = IntDomain::range(0, 9);
        assert!(d.remove_below(3));
        assert!(d.remove_above(6));
        assert_eq!(d.values(), vec![3, 4, 5, 6]);
        assert!(!d.remove_below(2));
        assert!(!d.remove_above(8));
    }

    #[test]
    fn remove_everything_empties() {
        let mut d = IntDomain::range(0, 2);
        d.remove(0);
        d.remove(1);
        d.remove(2);
        assert!(d.is_empty());
        assert_eq!(d.size(), 0);
        assert_eq!(d.values(), Vec::<u32>::new());
    }

    #[test]
    fn large_values_cross_word_boundaries() {
        let d = IntDomain::range(60, 130);
        assert_eq!(d.size(), 71);
        assert!(d.contains(64));
        assert!(d.contains(127));
        assert!(d.contains(128));
        assert!(!d.contains(131));
    }

    #[test]
    fn singleton_is_fixed() {
        let d = IntDomain::singleton(5);
        assert!(d.is_fixed());
        assert_eq!(d.value(), 5);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let _ = IntDomain::range(3, 2);
    }
}
