//! The solver's synchronization shim: the **only** place this crate (and
//! everything downstream of it) is allowed to touch atomics.
//!
//! In a normal build this module is a zero-cost alias of
//! [`std::sync::atomic`] and [`std::thread`] — the re-exports compile to
//! the identical code, nothing is wrapped.  Built with
//! `RUSTFLAGS="--cfg cwcs_check"`, the same names resolve to the
//! instrumented types of the in-tree concurrency model checker
//! ([`cwcs_check::atomic`] / [`cwcs_check::thread`]): every load, store,
//! RMW and fence becomes a scheduling point of a deterministic
//! interleaving explorer running under a C11-style weak-memory model, so
//! the ordering annotations in `deque.rs`, `search.rs` and `portfolio.rs`
//! are *checked*, not trusted.  See `CONCURRENCY.md` at the repository
//! root and the model-check suite in `tests/model_check.rs`.
//!
//! The `cwcs-lint` binary (crate `cwcs-check`) enforces the discipline:
//! any `std::sync::atomic` import outside this file fails CI.

// The shim is the sanctioned raw-atomics site (cwcs-lint exempts it).
#[cfg(not(cwcs_check))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

#[cfg(cwcs_check)]
pub use cwcs_check::atomic::{fence, AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Thread operations the model checker needs to control.  Code that spawns
/// scoped workers (`std::thread::scope`) keeps using `std` directly — the
/// model-check suites drive the lock-free cores with modelled threads
/// instead of the full portfolio loop.
pub mod thread {
    #[cfg(not(cwcs_check))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(cwcs_check)]
    pub use cwcs_check::thread::{spawn, yield_now, JoinHandle};
}

/// Pads and aligns a value to 64 bytes — the destructive interference range
/// (cache-line size) of x86-64 and most aarch64 parts — so two hot atomics
/// never share a line.  The deque's `top` and `bottom` are each written by
/// different parties at high rate; sharing a line would make every stealer
/// CAS invalidate the owner's `bottom` accesses and vice versa.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicI64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicI64>>(), 64);
        let padded = CachePadded(AtomicI64::new(7));
        assert_eq!(padded.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn shim_atomics_roundtrip() {
        let x = AtomicU64::new(1);
        // relaxed: single-threaded unit test, no concurrent observer
        assert_eq!(x.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(x.load(Ordering::Relaxed), 3);
        fence(Ordering::SeqCst);
        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
    }
}
