//! N-dimensional packing: one [`BinPacking`] constraint per resource
//! dimension over the same assignment variables.
//!
//! The paper's multi-knapsack formulation posts one bin-packing per resource
//! dimension (CPU and memory).  Generalizing the resource model to N
//! dimensions (network, disk, …) keeps that structure: the dimensions do not
//! interact inside a single propagator, they only share the assignment
//! variables.  This builder owns the one subtlety of the generalization —
//! **inert dimensions must not change the model**.  A dimension whose item
//! sizes are all zero can prune nothing, but posting its propagator would
//! still add fixpoint work; skipping it keeps the search on a legacy
//! 2-dimensional model bit-identical (same propagator set, same pruning,
//! same statistics) to what the historical pair-based code built.
//!
//! The first `always_dims` dimensions are posted unconditionally, whatever
//! their sizes: the legacy (CPU, memory) pair has always been posted even
//! when every demand was zero (e.g. a boot sub-problem packing idle VMs),
//! and the N-dimensional build must reproduce that model exactly.

use crate::constraints::BinPacking;
use crate::store::{Model, VarId};

/// Builder for per-dimension packing constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiDimPacking;

impl MultiDimPacking {
    /// Post one [`BinPacking`] per dimension of `sizes` / `capacities` over
    /// `vars`.  `sizes[d][i]` is the size of item `i` on dimension `d`;
    /// `capacities[d][b]` the capacity of bin `b` on that dimension.
    ///
    /// Dimensions with index `< always_dims` are posted unconditionally;
    /// later dimensions are posted only when at least one item size is
    /// nonzero (an all-zero dimension is inert — see the module docs).
    /// Returns the number of constraints posted.
    ///
    /// # Panics
    /// Panics when `sizes` and `capacities` disagree on the dimension count
    /// or any dimension disagrees with `vars` on the item count.
    pub fn post(
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> usize {
        Self::post_patchable(model, vars, sizes, capacities, always_dims)
            .slots
            .len()
    }

    /// Like [`MultiDimPacking::post`], but remember which slot each posted
    /// dimension landed in so the constraints can later be patched in place
    /// with [`PackingSlots::patch`] when only the sizes or capacities change.
    pub fn post_patchable(
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> PackingSlots {
        assert_eq!(
            sizes.len(),
            capacities.len(),
            "one capacity vector per dimension"
        );
        let mut slots = Vec::new();
        for (dim, (dim_sizes, dim_caps)) in sizes.iter().zip(capacities).enumerate() {
            assert_eq!(dim_sizes.len(), vars.len(), "one size per item");
            if dim >= always_dims && dim_sizes.iter().all(|&s| s == 0) {
                continue;
            }
            let slot = model.post_slot(BinPacking::new(
                vars.to_vec(),
                dim_sizes.clone(),
                dim_caps.clone(),
            ));
            slots.push((dim, slot));
        }
        PackingSlots {
            slots,
            items: vars.len(),
        }
    }
}

/// The propagator slots a [`MultiDimPacking::post_patchable`] call produced:
/// the handle for patching the packing constraints of a persistent model in
/// place instead of rebuilding the model.
#[derive(Debug, Clone)]
pub struct PackingSlots {
    /// `(dimension, propagator slot)` for every posted dimension.
    slots: Vec<(usize, usize)>,
    /// Item count the constraints were posted over.
    items: usize,
}

impl PackingSlots {
    /// Number of posted packing constraints.
    pub fn posted(&self) -> usize {
        self.slots.len()
    }

    /// Re-parameterize the posted packing constraints over the same `vars`
    /// with new `sizes` / `capacities`, swapping each propagator in place.
    ///
    /// Returns `false` — leaving the model untouched — when the patch cannot
    /// preserve the model shape: a different item count, or a dimension
    /// whose inertness flipped (an all-zero dimension that grew nonzero
    /// sizes, or vice versa), which would change the posted-propagator set.
    /// The caller rebuilds from scratch in that case.
    pub fn patch(
        &self,
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> bool {
        assert_eq!(
            sizes.len(),
            capacities.len(),
            "one capacity vector per dimension"
        );
        if vars.len() != self.items {
            return false;
        }
        // The set of posted dimensions must be unchanged.
        let mut wanted = Vec::new();
        for (dim, dim_sizes) in sizes.iter().enumerate() {
            assert_eq!(dim_sizes.len(), vars.len(), "one size per item");
            if dim >= always_dims && dim_sizes.iter().all(|&s| s == 0) {
                continue;
            }
            wanted.push(dim);
        }
        if wanted.len() != self.slots.len()
            || wanted.iter().zip(&self.slots).any(|(w, (dim, _))| w != dim)
        {
            return false;
        }
        for &(dim, slot) in &self.slots {
            model.replace_propagator(
                slot,
                BinPacking::new(vars.to_vec(), sizes[dim].clone(), capacities[dim].clone()),
            );
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;

    #[test]
    fn every_nonzero_dimension_constrains_the_assignment() {
        // Two items, two bins.  CPU is loose, memory is loose, but the net
        // dimension forces the items apart.
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a, b],
            &[
                vec![1, 1],
                vec![512, 512],
                vec![600, 600], // net: only one fits per bin
            ],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        );
        assert_eq!(posted, 3);
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s).unwrap();
        assert_eq!(s.value(b), 1, "the NIC dimension separates the items");
    }

    #[test]
    fn inert_extra_dimensions_are_skipped() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(posted, 2, "the all-zero net dimension must not be posted");
        assert_eq!(m.propagators().len(), 2);
    }

    #[test]
    fn legacy_dimensions_are_posted_even_when_zero() {
        // A boot sub-problem packs idle VMs: every CPU size is zero, yet the
        // historical model still posted the CPU constraint.  The builder
        // must reproduce that model exactly.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a],
            &[vec![0], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(posted, 2);
    }

    #[test]
    fn overcommitted_dimension_fails_propagation() {
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 0);
        MultiDimPacking::post(
            &mut m,
            &[a, b],
            &[vec![0, 0], vec![100, 100], vec![700, 700]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        );
        let mut s = m.root_store();
        assert!(
            propagate_to_fixpoint(m.propagators(), &mut s).is_err(),
            "both items committed to bin 0 overflow its NIC"
        );
    }

    #[test]
    #[should_panic(expected = "one capacity vector per dimension")]
    fn mismatched_dimension_counts_panic() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        MultiDimPacking::post(&mut m, &[a], &[vec![1]], &[vec![4], vec![4096]], 2);
    }

    #[test]
    fn patching_reparameterizes_without_changing_the_shape() {
        // Post with loose capacities, then patch the net dimension tighter:
        // the patched model must prune exactly like a freshly built one.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        let slots = MultiDimPacking::post_patchable(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512], vec![600, 600]],
            &[vec![4, 4], vec![4096, 4096], vec![2000, 2000]],
            2,
        );
        assert_eq!(slots.posted(), 3);
        let before = m.propagator_count();
        assert!(slots.patch(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512], vec![600, 600]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        ));
        assert_eq!(m.propagator_count(), before, "patching must not repost");
        let mut s = m.root_store();
        s.assign(a, 0).unwrap();
        propagate_to_fixpoint(m.propagators(), &mut s).unwrap();
        assert_eq!(s.value(b), 1, "the patched NIC capacity separates them");
    }

    #[test]
    fn patching_refuses_a_shape_change() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let slots = MultiDimPacking::post_patchable(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(slots.posted(), 2);
        // The inert net dimension turning live would need a new propagator:
        // the patch must refuse and leave the model untouched.
        assert!(!slots.patch(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![600]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        ));
        assert_eq!(m.propagator_count(), 2);
        // A different item count is also a rebuild.
        let b = m.new_var(0, 1);
        assert!(!slots.patch(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512]],
            &[vec![4, 4], vec![4096, 4096]],
            2,
        ));
    }
}
