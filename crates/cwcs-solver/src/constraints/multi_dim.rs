//! N-dimensional packing: one [`BinPacking`] constraint per resource
//! dimension over the same assignment variables.
//!
//! The paper's multi-knapsack formulation posts one bin-packing per resource
//! dimension (CPU and memory).  Generalizing the resource model to N
//! dimensions (network, disk, …) keeps that structure: the dimensions do not
//! interact inside a single propagator, they only share the assignment
//! variables.  This builder owns the one subtlety of the generalization —
//! **inert dimensions must not change the model**.  A dimension whose item
//! sizes are all zero can prune nothing, but posting its propagator would
//! still add fixpoint work; skipping it keeps the search on a legacy
//! 2-dimensional model bit-identical (same propagator set, same pruning,
//! same statistics) to what the historical pair-based code built.
//!
//! The first `always_dims` dimensions are posted unconditionally, whatever
//! their sizes: the legacy (CPU, memory) pair has always been posted even
//! when every demand was zero (e.g. a boot sub-problem packing idle VMs),
//! and the N-dimensional build must reproduce that model exactly.
//!
//! # Incremental re-posting: the [`PackingSlots`] handle
//!
//! [`MultiDimPacking::post_patchable`] remembers which propagator slot each
//! posted dimension went into, so a persistent model can re-parameterize
//! its packing constraints **in place** instead of being rebuilt:
//!
//! * [`PackingSlots::patch`] swaps fresh sizes/capacities into the original
//!   slots for the *same* item list (a same-shape re-solve under drifted
//!   demands);
//! * [`PackingSlots::resize`] additionally accepts a **different** live-item
//!   list — the set-diff protocol of `cwcs_core::optimizer`, where departed
//!   items' variables are retired and arrivals recycle the retired slots —
//!   re-posting each dimension's [`BinPacking`] over the new item count;
//! * [`PackingSlots::dims_compatible`] is the pre-check both require: the
//!   posted-dimension set must not change (an inertness flip — an all-zero
//!   dimension growing nonzero sizes or vice versa — adds or removes a
//!   propagator, which only a rebuild can express).  Checking it *before*
//!   mutating any variable lets a caller refuse a patch with the model
//!   untouched.
//!
//! A patched or resized model must stay search-indistinguishable from a
//! freshly built one; `tests/property_setdiff.rs` holds `resize` to that
//! bit-identity over randomized add/remove diffs.

use crate::constraints::BinPacking;
use crate::store::{Model, VarId};

/// Builder for per-dimension packing constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiDimPacking;

impl MultiDimPacking {
    /// Post one [`BinPacking`] per dimension of `sizes` / `capacities` over
    /// `vars`.  `sizes[d][i]` is the size of item `i` on dimension `d`;
    /// `capacities[d][b]` the capacity of bin `b` on that dimension.
    ///
    /// Dimensions with index `< always_dims` are posted unconditionally;
    /// later dimensions are posted only when at least one item size is
    /// nonzero (an all-zero dimension is inert — see the module docs).
    /// Returns the number of constraints posted.
    ///
    /// # Panics
    /// Panics when `sizes` and `capacities` disagree on the dimension count
    /// or any dimension disagrees with `vars` on the item count.
    pub fn post(
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> usize {
        Self::post_patchable(model, vars, sizes, capacities, always_dims)
            .slots
            .len()
    }

    /// Like [`MultiDimPacking::post`], but remember which slot each posted
    /// dimension landed in so the constraints can later be patched in place
    /// with [`PackingSlots::patch`] when only the sizes or capacities change.
    pub fn post_patchable(
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> PackingSlots {
        assert_eq!(
            sizes.len(),
            capacities.len(),
            "one capacity vector per dimension"
        );
        let mut slots = Vec::new();
        for (dim, (dim_sizes, dim_caps)) in sizes.iter().zip(capacities).enumerate() {
            assert_eq!(dim_sizes.len(), vars.len(), "one size per item");
            if dim >= always_dims && dim_sizes.iter().all(|&s| s == 0) {
                continue;
            }
            let slot = model.post_slot(BinPacking::new(
                vars.to_vec(),
                dim_sizes.clone(),
                dim_caps.clone(),
            ));
            slots.push((dim, slot));
        }
        PackingSlots {
            slots,
            items: vars.len(),
        }
    }
}

/// The propagator slots a [`MultiDimPacking::post_patchable`] call produced:
/// the handle for patching the packing constraints of a persistent model in
/// place instead of rebuilding the model.
#[derive(Debug, Clone)]
pub struct PackingSlots {
    /// `(dimension, propagator slot)` for every posted dimension.
    slots: Vec<(usize, usize)>,
    /// Item count the constraints were posted over.
    items: usize,
}

impl PackingSlots {
    /// Number of posted packing constraints.
    pub fn posted(&self) -> usize {
        self.slots.len()
    }

    /// Item count the constraints are currently posted over.
    pub fn items(&self) -> usize {
        self.items
    }

    /// True when re-posting over `sizes` would keep the posted-dimension
    /// set unchanged — the shape condition both [`PackingSlots::patch`] and
    /// [`PackingSlots::resize`] require.  A dimension whose inertness
    /// flipped (an all-zero dimension that grew nonzero sizes, or vice
    /// versa) would change which propagators exist, which only a rebuild
    /// can express.  Callers can pre-check this *before* mutating variables
    /// for a resize, so a refusal leaves the whole model untouched.
    pub fn dims_compatible(&self, sizes: &[Vec<u64>], always_dims: usize) -> bool {
        let wanted = sizes.iter().enumerate().filter_map(|(dim, dim_sizes)| {
            (dim < always_dims || dim_sizes.iter().any(|&s| s != 0)).then_some(dim)
        });
        let mut posted = self.slots.iter().map(|(dim, _)| *dim);
        for dim in wanted {
            if posted.next() != Some(dim) {
                return false;
            }
        }
        posted.next().is_none()
    }

    /// Re-parameterize the posted packing constraints over the same `vars`
    /// with new `sizes` / `capacities`, swapping each propagator in place.
    ///
    /// Returns `false` — leaving the model untouched — when the patch cannot
    /// preserve the model shape: a different item count, or a dimension
    /// whose inertness flipped, which would change the posted-propagator
    /// set.  The caller rebuilds from scratch in that case.  An item-count
    /// change is *not* fatal to patching in general — that is
    /// [`PackingSlots::resize`] — this method is the strict same-shape
    /// variant.
    pub fn patch(
        &self,
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> bool {
        if vars.len() != self.items {
            return false;
        }
        let mut slots = self.clone();
        slots.resize(model, vars, sizes, capacities, always_dims)
    }

    /// Grow or shrink the posted packing constraints to a new item set:
    /// every posted dimension is re-posted over `vars` (which may have a
    /// different length than the original item set) **into its original
    /// propagator slot**, keeping the propagator order — and therefore the
    /// fixpoint iteration order and the search trace — of the model it was
    /// first built into.  This is the constraint half of set-diff model
    /// patching: the caller retires/recycles/appends host variables, then
    /// resizes the packing terms over the live variables.
    ///
    /// Returns `false` — leaving the model untouched — when the
    /// posted-dimension set would change (see
    /// [`PackingSlots::dims_compatible`]).
    ///
    /// # Panics
    /// Panics when `sizes` and `capacities` disagree on the dimension count
    /// or any dimension disagrees with `vars` on the item count.
    pub fn resize(
        &mut self,
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> bool {
        assert_eq!(
            sizes.len(),
            capacities.len(),
            "one capacity vector per dimension"
        );
        for dim_sizes in sizes {
            assert_eq!(dim_sizes.len(), vars.len(), "one size per item");
        }
        if !self.dims_compatible(sizes, always_dims) {
            return false;
        }
        for &(dim, slot) in &self.slots {
            model.replace_propagator(
                slot,
                BinPacking::new(vars.to_vec(), sizes[dim].clone(), capacities[dim].clone()),
            );
        }
        self.items = vars.len();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;

    #[test]
    fn every_nonzero_dimension_constrains_the_assignment() {
        // Two items, two bins.  CPU is loose, memory is loose, but the net
        // dimension forces the items apart.
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a, b],
            &[
                vec![1, 1],
                vec![512, 512],
                vec![600, 600], // net: only one fits per bin
            ],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        );
        assert_eq!(posted, 3);
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s).unwrap();
        assert_eq!(s.value(b), 1, "the NIC dimension separates the items");
    }

    #[test]
    fn inert_extra_dimensions_are_skipped() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(posted, 2, "the all-zero net dimension must not be posted");
        assert_eq!(m.propagators().len(), 2);
    }

    #[test]
    fn legacy_dimensions_are_posted_even_when_zero() {
        // A boot sub-problem packs idle VMs: every CPU size is zero, yet the
        // historical model still posted the CPU constraint.  The builder
        // must reproduce that model exactly.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a],
            &[vec![0], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(posted, 2);
    }

    #[test]
    fn overcommitted_dimension_fails_propagation() {
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 0);
        MultiDimPacking::post(
            &mut m,
            &[a, b],
            &[vec![0, 0], vec![100, 100], vec![700, 700]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        );
        let mut s = m.root_store();
        assert!(
            propagate_to_fixpoint(m.propagators(), &mut s).is_err(),
            "both items committed to bin 0 overflow its NIC"
        );
    }

    #[test]
    #[should_panic(expected = "one capacity vector per dimension")]
    fn mismatched_dimension_counts_panic() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        MultiDimPacking::post(&mut m, &[a], &[vec![1]], &[vec![4], vec![4096]], 2);
    }

    #[test]
    fn patching_reparameterizes_without_changing_the_shape() {
        // Post with loose capacities, then patch the net dimension tighter:
        // the patched model must prune exactly like a freshly built one.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        let slots = MultiDimPacking::post_patchable(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512], vec![600, 600]],
            &[vec![4, 4], vec![4096, 4096], vec![2000, 2000]],
            2,
        );
        assert_eq!(slots.posted(), 3);
        let before = m.propagator_count();
        assert!(slots.patch(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512], vec![600, 600]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        ));
        assert_eq!(m.propagator_count(), before, "patching must not repost");
        let mut s = m.root_store();
        s.assign(a, 0).unwrap();
        propagate_to_fixpoint(m.propagators(), &mut s).unwrap();
        assert_eq!(s.value(b), 1, "the patched NIC capacity separates them");
    }

    #[test]
    fn patching_refuses_a_shape_change() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let slots = MultiDimPacking::post_patchable(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(slots.posted(), 2);
        // The inert net dimension turning live would need a new propagator:
        // the patch must refuse and leave the model untouched.
        assert!(!slots.patch(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![600]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        ));
        assert_eq!(m.propagator_count(), 2);
        // A different item count is a rebuild for the strict `patch`; the
        // set-diff path goes through `resize` instead.
        let b = m.new_var(0, 1);
        assert!(!slots.patch(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512]],
            &[vec![4, 4], vec![4096, 4096]],
            2,
        ));
    }

    #[test]
    fn resizing_grows_and_shrinks_without_reposting() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let mut slots = MultiDimPacking::post_patchable(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![100]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        );
        assert_eq!(slots.items(), 1);
        let posted = m.propagator_count();
        // Grow to two items: same slots, new item set.
        let b = m.new_var(0, 1);
        assert!(slots.resize(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512], vec![600, 600]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        ));
        assert_eq!(slots.items(), 2);
        assert_eq!(m.propagator_count(), posted, "resizing must not repost");
        // The grown constraints prune like a fresh post: the net dimension
        // forces the two items apart.
        let mut s = m.root_store();
        s.assign(a, 0).unwrap();
        propagate_to_fixpoint(m.propagators(), &mut s).unwrap();
        assert_eq!(s.value(b), 1);
        // Shrink back to one item.
        assert!(slots.resize(
            &mut m,
            &[b],
            &[vec![1], vec![512], vec![600]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        ));
        assert_eq!(slots.items(), 1);
        assert_eq!(m.propagator_count(), posted);
    }

    #[test]
    fn resizing_refuses_an_inertness_flip() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let mut slots = MultiDimPacking::post_patchable(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        let b = m.new_var(0, 1);
        // The inert net dimension turning live needs a propagator that was
        // never posted: refuse, leaving the model and the slots untouched.
        assert!(!slots.dims_compatible(&[vec![1, 1], vec![512, 512], vec![600, 600]], 2));
        assert!(!slots.resize(
            &mut m,
            &[a, b],
            &[vec![1, 1], vec![512, 512], vec![600, 600]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        ));
        assert_eq!(slots.items(), 1);
        assert_eq!(m.propagator_count(), 2);
    }
}
