//! N-dimensional packing: one [`BinPacking`] constraint per resource
//! dimension over the same assignment variables.
//!
//! The paper's multi-knapsack formulation posts one bin-packing per resource
//! dimension (CPU and memory).  Generalizing the resource model to N
//! dimensions (network, disk, …) keeps that structure: the dimensions do not
//! interact inside a single propagator, they only share the assignment
//! variables.  This builder owns the one subtlety of the generalization —
//! **inert dimensions must not change the model**.  A dimension whose item
//! sizes are all zero can prune nothing, but posting its propagator would
//! still add fixpoint work; skipping it keeps the search on a legacy
//! 2-dimensional model bit-identical (same propagator set, same pruning,
//! same statistics) to what the historical pair-based code built.
//!
//! The first `always_dims` dimensions are posted unconditionally, whatever
//! their sizes: the legacy (CPU, memory) pair has always been posted even
//! when every demand was zero (e.g. a boot sub-problem packing idle VMs),
//! and the N-dimensional build must reproduce that model exactly.

use crate::constraints::BinPacking;
use crate::store::{Model, VarId};

/// Builder for per-dimension packing constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiDimPacking;

impl MultiDimPacking {
    /// Post one [`BinPacking`] per dimension of `sizes` / `capacities` over
    /// `vars`.  `sizes[d][i]` is the size of item `i` on dimension `d`;
    /// `capacities[d][b]` the capacity of bin `b` on that dimension.
    ///
    /// Dimensions with index `< always_dims` are posted unconditionally;
    /// later dimensions are posted only when at least one item size is
    /// nonzero (an all-zero dimension is inert — see the module docs).
    /// Returns the number of constraints posted.
    ///
    /// # Panics
    /// Panics when `sizes` and `capacities` disagree on the dimension count
    /// or any dimension disagrees with `vars` on the item count.
    pub fn post(
        model: &mut Model,
        vars: &[VarId],
        sizes: &[Vec<u64>],
        capacities: &[Vec<u64>],
        always_dims: usize,
    ) -> usize {
        assert_eq!(
            sizes.len(),
            capacities.len(),
            "one capacity vector per dimension"
        );
        let mut posted = 0;
        for (dim, (dim_sizes, dim_caps)) in sizes.iter().zip(capacities).enumerate() {
            assert_eq!(dim_sizes.len(), vars.len(), "one size per item");
            if dim >= always_dims && dim_sizes.iter().all(|&s| s == 0) {
                continue;
            }
            model.post(BinPacking::new(
                vars.to_vec(),
                dim_sizes.clone(),
                dim_caps.clone(),
            ));
            posted += 1;
        }
        posted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;

    #[test]
    fn every_nonzero_dimension_constrains_the_assignment() {
        // Two items, two bins.  CPU is loose, memory is loose, but the net
        // dimension forces the items apart.
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a, b],
            &[
                vec![1, 1],
                vec![512, 512],
                vec![600, 600], // net: only one fits per bin
            ],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        );
        assert_eq!(posted, 3);
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s).unwrap();
        assert_eq!(s.value(b), 1, "the NIC dimension separates the items");
    }

    #[test]
    fn inert_extra_dimensions_are_skipped() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a],
            &[vec![1], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(posted, 2, "the all-zero net dimension must not be posted");
        assert_eq!(m.propagators().len(), 2);
    }

    #[test]
    fn legacy_dimensions_are_posted_even_when_zero() {
        // A boot sub-problem packs idle VMs: every CPU size is zero, yet the
        // historical model still posted the CPU constraint.  The builder
        // must reproduce that model exactly.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let posted = MultiDimPacking::post(
            &mut m,
            &[a],
            &[vec![0], vec![512], vec![0]],
            &[vec![4, 4], vec![4096, 4096], vec![0, 0]],
            2,
        );
        assert_eq!(posted, 2);
    }

    #[test]
    fn overcommitted_dimension_fails_propagation() {
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 0);
        MultiDimPacking::post(
            &mut m,
            &[a, b],
            &[vec![0, 0], vec![100, 100], vec![700, 700]],
            &[vec![4, 4], vec![4096, 4096], vec![1000, 1000]],
            2,
        );
        let mut s = m.root_store();
        assert!(
            propagate_to_fixpoint(m.propagators(), &mut s).is_err(),
            "both items committed to bin 0 overflow its NIC"
        );
    }

    #[test]
    #[should_panic(expected = "one capacity vector per dimension")]
    fn mismatched_dimension_counts_panic() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        MultiDimPacking::post(&mut m, &[a], &[vec![1]], &[vec![4], vec![4096]], 2);
    }
}
