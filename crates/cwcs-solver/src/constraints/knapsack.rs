//! Knapsack consistency by dynamic programming (Trick, 2001).
//!
//! The constraint is `lo ≤ Σ weight_i · x_i ≤ hi` over 0/1 variables.  The
//! propagator builds the layered reachability graph of partial sums
//! (one layer per variable) forward and backward, and removes from a
//! variable's domain every value that does not lie on a path from sum 0 to a
//! sum inside `[lo, hi]`.  This is exactly the propagation Entropy relies on
//! for its per-node knapsack constraints ("solving a Multiple Knapsack
//! problem using a dynamic programming approach").

use crate::propagator::{Inconsistency, PropagationResult, Propagator};
use crate::store::{DomainStore, VarId};

/// `lo ≤ Σ weights[i] · vars[i] ≤ hi` with `vars[i] ∈ {0, 1}`.
#[derive(Debug, Clone)]
pub struct Knapsack {
    vars: Vec<VarId>,
    weights: Vec<u64>,
    lo: u64,
    hi: u64,
}

impl Knapsack {
    /// Build the constraint.  Variables are expected to be 0/1; larger values
    /// in their domains are removed at propagation time.
    ///
    /// # Panics
    /// Panics when `vars` and `weights` have different lengths or `lo > hi`.
    pub fn new(vars: Vec<VarId>, weights: Vec<u64>, lo: u64, hi: u64) -> Self {
        assert_eq!(vars.len(), weights.len());
        assert!(lo <= hi, "empty knapsack interval");
        Knapsack {
            vars,
            weights,
            lo,
            hi,
        }
    }

    /// Capacity-only form: `Σ weights[i] · vars[i] ≤ capacity`.
    pub fn at_most(vars: Vec<VarId>, weights: Vec<u64>, capacity: u64) -> Self {
        Knapsack::new(vars, weights, 0, capacity)
    }
}

impl Propagator for Knapsack {
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
        let n = self.vars.len();
        let mut changed = false;

        // Restrict the variables to {0, 1} first.
        for &v in &self.vars {
            if store.max(v) > 1 {
                changed |= store.remove_above(v, 1)?;
            }
        }

        let cap = self.hi as usize;

        // forward[j] = set of sums reachable using variables 0..j (bitvec over 0..=hi).
        let mut forward: Vec<Vec<bool>> = Vec::with_capacity(n + 1);
        let mut layer = vec![false; cap + 1];
        layer[0] = true;
        forward.push(layer.clone());
        for j in 0..n {
            let mut next = vec![false; cap + 1];
            let w = self.weights[j] as usize;
            let can_zero = store.contains(self.vars[j], 0);
            let can_one = store.contains(self.vars[j], 1);
            for s in 0..=cap {
                if !forward[j][s] {
                    continue;
                }
                if can_zero {
                    next[s] = true;
                }
                if can_one && s + w <= cap {
                    next[s + w] = true;
                }
            }
            forward.push(next);
        }

        // The final layer must intersect [lo, hi].
        if !(self.lo as usize..=cap).any(|s| forward[n][s]) {
            return Err(Inconsistency::failure(
                "knapsack: no reachable sum in range",
            ));
        }

        // backward[j] = set of sums s such that starting at sum s before
        // variable j, a final sum in [lo, hi] is reachable.
        let mut backward: Vec<Vec<bool>> = vec![vec![false; cap + 1]; n + 1];
        for flag in backward[n][self.lo as usize..=cap].iter_mut() {
            *flag = true;
        }
        for j in (0..n).rev() {
            let w = self.weights[j] as usize;
            let can_zero = store.contains(self.vars[j], 0);
            let can_one = store.contains(self.vars[j], 1);
            for s in 0..=cap {
                let mut ok = false;
                if can_zero && backward[j + 1][s] {
                    ok = true;
                }
                if !ok && can_one && s + w <= cap && backward[j + 1][s + w] {
                    ok = true;
                }
                backward[j][s] = ok;
            }
        }

        // A value v of variable j is supported iff there is a sum s reachable
        // before j (forward[j][s]) such that after taking v the remainder can
        // still complete (backward[j+1][s + w*v]).
        for j in 0..n {
            let w = self.weights[j] as usize;
            for v in [0u32, 1u32] {
                if !store.contains(self.vars[j], v) {
                    continue;
                }
                let supported = (0..=cap).any(|s| {
                    if !forward[j][s] {
                        return false;
                    }
                    let after = s + w * v as usize;
                    after <= cap && backward[j + 1][after]
                });
                if !supported {
                    changed |= store.remove(self.vars[j], v)?;
                }
            }
        }

        Ok(if changed {
            PropagationResult::Changed
        } else {
            PropagationResult::Unchanged
        })
    }

    fn name(&self) -> &str {
        "knapsack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;
    use crate::store::Model;

    fn fixpoint(m: &Model) -> Result<DomainStore, Inconsistency> {
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s)?;
        Ok(s)
    }

    #[test]
    fn capacity_forces_exclusion() {
        // Two items of weight 3 and 4, capacity 5: they cannot both be taken,
        // but either alone (or none) fits, so no single value is prunable.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        m.post(Knapsack::at_most(vec![a, b], vec![3, 4], 5));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.domain(a).size(), 2);
        assert_eq!(s.domain(b).size(), 2);

        // Fix a = 1: b must be 0.
        let mut m = Model::new();
        let a = m.new_var(1, 1);
        let b = m.new_var(0, 1);
        m.post(Knapsack::at_most(vec![a, b], vec![3, 4], 5));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(b), 0);
    }

    #[test]
    fn lower_bound_forces_inclusion() {
        // Weights 3 and 4, the sum must be at least 6: both must be taken.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        m.post(Knapsack::new(vec![a, b], vec![3, 4], 6, 10));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(a), 1);
        assert_eq!(s.value(b), 1);
    }

    #[test]
    fn infeasible_interval_fails() {
        // Weights 2 and 2, sum must be in [5, 5]: impossible.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        m.post(Knapsack::new(vec![a, b], vec![2, 2], 5, 5));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn exact_sum_selects_the_unique_subset() {
        // Weights 1, 2, 4: sum must equal 5 -> items 0 and 2, not 1.
        let mut m = Model::new();
        let vars: Vec<_> = (0..3).map(|_| m.new_var(0, 1)).collect();
        m.post(Knapsack::new(vars.clone(), vec![1, 2, 4], 5, 5));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(vars[0]), 1);
        assert_eq!(s.value(vars[1]), 0);
        assert_eq!(s.value(vars[2]), 1);
    }

    #[test]
    fn non_boolean_domains_are_clamped() {
        let mut m = Model::new();
        let a = m.new_var(0, 5);
        m.post(Knapsack::at_most(vec![a], vec![1], 1));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.max(a), 1);
    }

    #[test]
    fn zero_weight_items_are_free() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        m.post(Knapsack::new(vec![a, b], vec![0, 5], 5, 5));
        let s = fixpoint(&m).unwrap();
        // b must be taken to reach 5; a is unconstrained.
        assert_eq!(s.value(b), 1);
        assert_eq!(s.domain(a).size(), 2);
    }
}
