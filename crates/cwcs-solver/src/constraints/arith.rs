//! Arithmetic constraints: equality/difference with constants and linear
//! inequalities with non-negative coefficients.

use crate::propagator::{Inconsistency, PropagationResult, Propagator};
use crate::store::{DomainStore, VarId};

/// `x == value`
#[derive(Debug, Clone)]
pub struct EqualConst {
    var: VarId,
    value: u32,
}

impl EqualConst {
    /// Constrain `var` to equal `value`.
    pub fn new(var: VarId, value: u32) -> Self {
        EqualConst { var, value }
    }
}

impl Propagator for EqualConst {
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
        let changed = store.assign(self.var, self.value)?;
        Ok(if changed {
            PropagationResult::Changed
        } else {
            PropagationResult::Unchanged
        })
    }

    fn name(&self) -> &str {
        "equal-const"
    }
}

/// `x != value`
#[derive(Debug, Clone)]
pub struct NotEqualConst {
    var: VarId,
    value: u32,
}

impl NotEqualConst {
    /// Constrain `var` to differ from `value`.
    pub fn new(var: VarId, value: u32) -> Self {
        NotEqualConst { var, value }
    }
}

impl Propagator for NotEqualConst {
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
        let changed = store.remove(self.var, self.value)?;
        Ok(if changed {
            PropagationResult::Changed
        } else {
            PropagationResult::Unchanged
        })
    }

    fn name(&self) -> &str {
        "not-equal-const"
    }
}

/// `Σ coefficient_i · x_i ≤ bound` with non-negative coefficients.
///
/// Propagation is bounds-consistent: for each variable the maximum value
/// compatible with the minimal contribution of every other variable is
/// enforced.
#[derive(Debug, Clone)]
pub struct LinearLeq {
    vars: Vec<VarId>,
    coefficients: Vec<u64>,
    bound: u64,
}

impl LinearLeq {
    /// Build the constraint `Σ coefficients[i] · vars[i] ≤ bound`.
    ///
    /// # Panics
    /// Panics when `vars` and `coefficients` have different lengths.
    pub fn new(vars: Vec<VarId>, coefficients: Vec<u64>, bound: u64) -> Self {
        assert_eq!(vars.len(), coefficients.len());
        LinearLeq {
            vars,
            coefficients,
            bound,
        }
    }

    /// `Σ x_i ≤ bound` (unit coefficients).
    pub fn sum_leq(vars: Vec<VarId>, bound: u64) -> Self {
        let n = vars.len();
        LinearLeq::new(vars, vec![1; n], bound)
    }
}

impl Propagator for LinearLeq {
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
        // Minimal total contribution.
        let min_sum: u64 = self
            .vars
            .iter()
            .zip(&self.coefficients)
            .map(|(&v, &c)| c * store.min(v) as u64)
            .sum();
        if min_sum > self.bound {
            return Err(Inconsistency::failure(format!(
                "linear sum minimum {min_sum} exceeds bound {}",
                self.bound
            )));
        }
        let mut changed = false;
        for (&v, &c) in self.vars.iter().zip(&self.coefficients) {
            if c == 0 {
                continue;
            }
            let others = min_sum - c * store.min(v) as u64;
            let slack = self.bound - others;
            let max_allowed = (slack / c) as u32;
            if store.max(v) > max_allowed {
                changed |= store.remove_above(v, max_allowed)?;
            }
        }
        Ok(if changed {
            PropagationResult::Changed
        } else {
            PropagationResult::Unchanged
        })
    }

    fn name(&self) -> &str {
        "linear-leq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;
    use crate::store::Model;

    fn fixpoint(m: &Model) -> Result<DomainStore, Inconsistency> {
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s)?;
        Ok(s)
    }

    #[test]
    fn equal_const_fixes_the_variable() {
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        m.post(EqualConst::new(x, 4));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(x), 4);
    }

    #[test]
    fn equal_const_outside_domain_fails() {
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        m.post(EqualConst::new(x, 7));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn not_equal_const_removes_the_value() {
        let mut m = Model::new();
        let x = m.new_var(0, 2);
        m.post(NotEqualConst::new(x, 1));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.domain(x).values(), vec![0, 2]);
    }

    #[test]
    fn linear_leq_prunes_upper_bounds() {
        // 2x + 3y <= 10 with x,y in [0,5]:
        // x <= 5, y <= 3 after propagation (with the other at its minimum 0).
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let y = m.new_var(0, 5);
        m.post(LinearLeq::new(vec![x, y], vec![2, 3], 10));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.max(x), 5);
        assert_eq!(s.max(y), 3);
    }

    #[test]
    fn linear_leq_uses_other_minimums() {
        // x + y <= 5, x >= 4 -> y <= 1
        let mut m = Model::new();
        let x = m.new_var(4, 5);
        let y = m.new_var(0, 5);
        m.post(LinearLeq::sum_leq(vec![x, y], 5));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.max(y), 1);
    }

    #[test]
    fn linear_leq_detects_infeasibility() {
        let mut m = Model::new();
        let x = m.new_var(3, 5);
        let y = m.new_var(3, 5);
        m.post(LinearLeq::sum_leq(vec![x, y], 5));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn zero_coefficient_variables_are_ignored() {
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let y = m.new_var(0, 9);
        m.post(LinearLeq::new(vec![x, y], vec![0, 1], 4));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.max(x), 9);
        assert_eq!(s.max(y), 4);
    }
}
