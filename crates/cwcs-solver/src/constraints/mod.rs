//! The constraints used by the placement models of `cwcs-core`.
//!
//! * [`arith`] — equality/difference with constants, linear inequalities;
//! * [`all_different`] — pairwise difference (used by tests and auxiliary
//!   models);
//! * [`element`] — `z = table[x]` indexing;
//! * [`knapsack`] — the dynamic-programming knapsack consistency of Trick
//!   (2001), the propagation Entropy uses for per-node resource constraints;
//! * [`bin_packing`] — the bin-packing constraint of Shaw (2004) over
//!   assignment variables, the multi-knapsack formulation of the paper;
//! * [`multi_dim`] — the N-dimensional packing builder: one bin-packing per
//!   resource dimension over shared assignment variables, inert dimensions
//!   skipped so legacy 2-dimensional models stay bit-identical.

pub mod all_different;
pub mod arith;
pub mod bin_packing;
pub mod element;
pub mod knapsack;
pub mod multi_dim;

pub use all_different::AllDifferent;
pub use arith::{EqualConst, LinearLeq, NotEqualConst};
pub use bin_packing::BinPacking;
pub use element::Element;
pub use knapsack::Knapsack;
pub use multi_dim::{MultiDimPacking, PackingSlots};
