//! The element constraint `z = table[x]`.
//!
//! Used to channel an assignment variable (a node index) to a derived
//! quantity taken from a constant table (for instance the cost of resuming a
//! VM on each candidate node).

use std::collections::BTreeSet;

use crate::propagator::{Inconsistency, PropagationResult, Propagator};
use crate::store::{DomainStore, VarId};

/// `result = table[index]` where `table` is a constant array.
#[derive(Debug, Clone)]
pub struct Element {
    index: VarId,
    result: VarId,
    table: Vec<u32>,
}

impl Element {
    /// Build the constraint `result = table[index]`.
    pub fn new(index: VarId, result: VarId, table: Vec<u32>) -> Self {
        Element {
            index,
            result,
            table,
        }
    }
}

impl Propagator for Element {
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
        let mut changed = false;

        // Indices outside the table are impossible.
        let max_index = self.table.len() as u32 - 1;
        if store.max(self.index) > max_index {
            changed |= store.remove_above(self.index, max_index)?;
        }

        // result must be one of table[i] for i in dom(index).
        let supported: BTreeSet<u32> = store
            .domain(self.index)
            .iter()
            .map(|i| self.table[i as usize])
            .collect();
        for value in store.domain(self.result).values() {
            if !supported.contains(&value) {
                changed |= store.remove(self.result, value)?;
            }
        }

        // index i is only possible when table[i] is still in dom(result).
        for i in store.domain(self.index).values() {
            if !store.contains(self.result, self.table[i as usize]) {
                changed |= store.remove(self.index, i)?;
            }
        }

        Ok(if changed {
            PropagationResult::Changed
        } else {
            PropagationResult::Unchanged
        })
    }

    fn name(&self) -> &str {
        "element"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;
    use crate::store::Model;

    fn fixpoint(m: &Model) -> Result<DomainStore, Inconsistency> {
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s)?;
        Ok(s)
    }

    #[test]
    fn result_follows_index() {
        let mut m = Model::new();
        let i = m.new_var(1, 1);
        let r = m.new_var(0, 100);
        m.post(Element::new(i, r, vec![10, 20, 30]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(r), 20);
    }

    #[test]
    fn index_follows_result() {
        let mut m = Model::new();
        let i = m.new_var(0, 2);
        let r = m.new_var(30, 30);
        m.post(Element::new(i, r, vec![10, 20, 30]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(i), 2);
    }

    #[test]
    fn out_of_range_indices_are_removed() {
        let mut m = Model::new();
        let i = m.new_var(0, 9);
        let r = m.new_var(0, 100);
        m.post(Element::new(i, r, vec![5, 6]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.max(i), 1);
        assert_eq!(s.domain(r).values(), vec![5, 6]);
    }

    #[test]
    fn impossible_result_fails() {
        let mut m = Model::new();
        let i = m.new_var(0, 1);
        let r = m.new_var(99, 99);
        m.post(Element::new(i, r, vec![1, 2]));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn duplicate_table_entries_keep_both_indices() {
        let mut m = Model::new();
        let i = m.new_var(0, 2);
        let r = m.new_var(7, 7);
        m.post(Element::new(i, r, vec![7, 3, 7]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.domain(i).values(), vec![0, 2]);
    }
}
