//! Bin-packing constraint over assignment variables (Shaw, 2004).
//!
//! Each item `i` has a size and an assignment variable whose value is the
//! index of the bin it goes to; each bin has a capacity.  This is the
//! "multi-knapsack" formulation of the paper: one bin per node, one item per
//! running VM, one instance of the constraint per resource dimension (CPU and
//! memory).
//!
//! Propagation:
//! * a bin whose *committed load* (items already fixed to it) exceeds its
//!   capacity is a failure;
//! * a candidate bin is removed from an item's domain when the committed load
//!   plus the item size exceeds the capacity;
//! * a global feasibility check fails when the total size of all items
//!   exceeds the total remaining capacity of the bins they can still go to.

use crate::propagator::{Inconsistency, PropagationResult, Propagator};
use crate::store::{DomainStore, VarId};

/// Bin-packing: `assignment[i] = b` implies item `i` occupies `sizes[i]`
/// units of bin `b`, and no bin may exceed its capacity.
#[derive(Debug, Clone)]
pub struct BinPacking {
    assignments: Vec<VarId>,
    sizes: Vec<u64>,
    capacities: Vec<u64>,
}

impl BinPacking {
    /// Build a bin-packing constraint.
    ///
    /// # Panics
    /// Panics when `assignments` and `sizes` have different lengths.
    pub fn new(assignments: Vec<VarId>, sizes: Vec<u64>, capacities: Vec<u64>) -> Self {
        assert_eq!(assignments.len(), sizes.len());
        BinPacking {
            assignments,
            sizes,
            capacities,
        }
    }

    fn bin_count(&self) -> usize {
        self.capacities.len()
    }
}

impl Propagator for BinPacking {
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
        let n_bins = self.bin_count();
        let mut changed = false;

        // Candidate bins must exist.
        for &var in &self.assignments {
            if store.max(var) as usize >= n_bins {
                changed |= store.remove_above(var, n_bins as u32 - 1)?;
            }
        }

        loop {
            let mut progressed = false;

            // Committed load of each bin: items whose assignment is fixed.
            let mut committed = vec![0u64; n_bins];
            for (i, &var) in self.assignments.iter().enumerate() {
                if let Some(bin) = store.fixed_value(var) {
                    committed[bin as usize] += self.sizes[i];
                }
            }
            for (bin, &load) in committed.iter().enumerate() {
                if load > self.capacities[bin] {
                    return Err(Inconsistency::failure(format!(
                        "bin {bin} overloaded: committed {load} > capacity {}",
                        self.capacities[bin]
                    )));
                }
            }

            // Remove bins that cannot take an unfixed item anymore.
            for (i, &var) in self.assignments.iter().enumerate() {
                if store.is_fixed(var) {
                    continue;
                }
                for bin in store.domain(var).values() {
                    if committed[bin as usize] + self.sizes[i] > self.capacities[bin as usize] {
                        store.remove(var, bin)?;
                        progressed = true;
                        changed = true;
                    }
                }
            }

            if !progressed {
                break;
            }
        }

        // Global feasibility: total item size vs. total usable capacity.
        let total_items: u64 = self.sizes.iter().sum();
        let total_capacity: u64 = self.capacities.iter().sum();
        if total_items > total_capacity {
            return Err(Inconsistency::failure(format!(
                "bin packing infeasible: total item size {total_items} exceeds total capacity {total_capacity}"
            )));
        }

        Ok(if changed {
            PropagationResult::Changed
        } else {
            PropagationResult::Unchanged
        })
    }

    fn name(&self) -> &str {
        "bin-packing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;
    use crate::store::Model;

    fn fixpoint(m: &Model) -> Result<DomainStore, Inconsistency> {
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s)?;
        Ok(s)
    }

    #[test]
    fn committed_overload_fails() {
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 0);
        m.post(BinPacking::new(vec![a, b], vec![3, 3], vec![5, 5]));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn full_bins_are_removed_from_candidates() {
        // Item 0 fixed to bin 0 with size 4 (capacity 5); item 1 of size 2
        // cannot go to bin 0 anymore.
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 1);
        m.post(BinPacking::new(vec![a, b], vec![4, 2], vec![5, 5]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(b), 1);
    }

    #[test]
    fn chain_of_forced_assignments() {
        // Three items of size 2, three bins of capacity 2: once the first two
        // are fixed the third follows.
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(1, 1);
        let c = m.new_var(0, 2);
        m.post(BinPacking::new(vec![a, b, c], vec![2, 2, 2], vec![2, 2, 2]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(c), 2);
    }

    #[test]
    fn total_capacity_check_fails_early() {
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        let c = m.new_var(0, 1);
        m.post(BinPacking::new(vec![a, b, c], vec![3, 3, 3], vec![4, 4]));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn out_of_range_bins_are_removed() {
        let mut m = Model::new();
        let a = m.new_var(0, 9);
        m.post(BinPacking::new(vec![a], vec![1], vec![1, 1, 1]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.max(a), 2);
    }

    #[test]
    fn zero_size_items_fit_anywhere() {
        let mut m = Model::new();
        let a = m.new_var(0, 0);
        let b = m.new_var(0, 1);
        m.post(BinPacking::new(vec![a, b], vec![5, 0], vec![5, 0]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(
            s.domain(b).size(),
            2,
            "a zero-size item can share a full bin"
        );
    }

    #[test]
    fn two_dimensional_packing_via_two_constraints() {
        // The paper posts one bin-packing per resource dimension over the same
        // assignment variables.  CPU dimension forces separation, memory
        // dimension is loose.
        let mut m = Model::new();
        let a = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        // CPU: both need a full unit, each node has one unit.
        m.post(BinPacking::new(vec![a, b], vec![1, 1], vec![1, 1]));
        // Memory: plenty everywhere.
        m.post(BinPacking::new(
            vec![a, b],
            vec![512, 512],
            vec![4096, 4096],
        ));
        // Fix a to node 0: CPU packing forces b to node 1.
        m.post(crate::constraints::EqualConst::new(a, 0));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.value(b), 1);
    }
}
