//! Pairwise-difference constraint.
//!
//! The propagation is value-based: the value of every fixed variable is
//! removed from the other domains, and a pigeonhole check fails early when
//! fewer candidate values remain than variables to place.

use std::collections::BTreeSet;

use crate::propagator::{Inconsistency, PropagationResult, Propagator};
use crate::store::{DomainStore, VarId};

/// All the given variables must take pairwise different values.
#[derive(Debug, Clone)]
pub struct AllDifferent {
    vars: Vec<VarId>,
}

impl AllDifferent {
    /// Build the constraint over the given variables.
    pub fn new(vars: Vec<VarId>) -> Self {
        AllDifferent { vars }
    }
}

impl Propagator for AllDifferent {
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
        let mut changed = false;
        // Value propagation from fixed variables.
        loop {
            let mut progressed = false;
            let fixed: Vec<(VarId, u32)> = self
                .vars
                .iter()
                .filter_map(|&v| store.fixed_value(v).map(|val| (v, val)))
                .collect();
            // Two variables fixed to the same value: failure.
            let mut seen = BTreeSet::new();
            for (_, val) in &fixed {
                if !seen.insert(*val) {
                    return Err(Inconsistency::failure(format!(
                        "all-different: value {val} used twice"
                    )));
                }
            }
            for &(fixed_var, val) in &fixed {
                for &other in &self.vars {
                    if other != fixed_var && store.contains(other, val) {
                        store.remove(other, val)?;
                        progressed = true;
                        changed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        // Pigeonhole: the union of the domains must be at least as large as
        // the number of variables.
        let mut union = BTreeSet::new();
        for &v in &self.vars {
            union.extend(store.domain(v).iter());
        }
        if union.len() < self.vars.len() {
            return Err(Inconsistency::failure(
                "all-different: fewer values than variables",
            ));
        }
        Ok(if changed {
            PropagationResult::Changed
        } else {
            PropagationResult::Unchanged
        })
    }

    fn name(&self) -> &str {
        "all-different"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::propagate_to_fixpoint;
    use crate::store::Model;

    fn fixpoint(m: &Model) -> Result<DomainStore, Inconsistency> {
        let mut s = m.root_store();
        propagate_to_fixpoint(m.propagators(), &mut s)?;
        Ok(s)
    }

    #[test]
    fn fixed_values_are_removed_from_others() {
        let mut m = Model::new();
        let x = m.new_var(1, 1);
        let y = m.new_var(1, 2);
        let z = m.new_var(1, 3);
        m.post(AllDifferent::new(vec![x, y, z]));
        let s = fixpoint(&m).unwrap();
        // x=1 forces y=2 which forces z=3.
        assert_eq!(s.value(y), 2);
        assert_eq!(s.value(z), 3);
    }

    #[test]
    fn duplicate_fixed_values_fail() {
        let mut m = Model::new();
        let x = m.new_var(2, 2);
        let y = m.new_var(2, 2);
        m.post(AllDifferent::new(vec![x, y]));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn pigeonhole_failure() {
        let mut m = Model::new();
        let x = m.new_var(0, 1);
        let y = m.new_var(0, 1);
        let z = m.new_var(0, 1);
        m.post(AllDifferent::new(vec![x, y, z]));
        assert!(fixpoint(&m).is_err());
    }

    #[test]
    fn no_spurious_pruning() {
        let mut m = Model::new();
        let x = m.new_var(0, 2);
        let y = m.new_var(0, 2);
        m.post(AllDifferent::new(vec![x, y]));
        let s = fixpoint(&m).unwrap();
        assert_eq!(s.domain(x).size(), 3);
        assert_eq!(s.domain(y).size(), 3);
    }
}
