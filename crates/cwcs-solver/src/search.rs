//! Depth-first search, branch & bound and the anytime behaviour of Entropy.
//!
//! The optimizer of the paper "keeps computing configurations with a reduced
//! cost until it proves that the cost of the plan is minimum or hits the
//! timeout".  [`Search::minimize`] reproduces exactly that contract: it
//! returns the best solution found within the deadline together with
//! statistics saying whether optimality was proven.
//!
//! Variable ordering defaults to **first-fail** (smallest domain first), the
//! heuristic the paper cites (Haralick & Elliott, 1980); value ordering
//! defaults to smallest-value-first but can be overridden, which the
//! placement model uses to try a VM's current node first so that solutions
//! with few migrations are found early.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{AtomicBool, AtomicI64, Ordering};

use crate::propagator::{propagate_to_fixpoint, Inconsistency, Propagator};
use crate::store::{DomainStore, Model, VarId};

/// A compact, replayable checkpoint of a search frontier: the `(var, value)`
/// decisions leading from the root to one unexplored subtree.
///
/// This is the unit of work the partitioned portfolio donates and steals
/// (see [`crate::portfolio`] and [`crate::deque`]): instead of shipping a
/// whole domain store between workers, a frozen subtree is just its decision
/// trail, and the thief reconstructs the store by replaying the trail —
/// assign, propagate to fixpoint, repeat — against a fresh copy of the root.
/// Propagation is deterministic, so the replayed store is identical to the
/// one the donor abandoned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubtreeCheckpoint {
    /// Decisions from the root, in the order they were taken.
    pub trail: Vec<(VarId, u32)>,
}

impl SubtreeCheckpoint {
    /// The checkpoint of the root itself (empty trail).
    pub fn root() -> Self {
        SubtreeCheckpoint::default()
    }

    /// The checkpoint one decision deeper.
    pub fn child(&self, var: VarId, value: u32) -> Self {
        let mut trail = Vec::with_capacity(self.trail.len() + 1);
        trail.extend_from_slice(&self.trail);
        trail.push((var, value));
        SubtreeCheckpoint { trail }
    }

    /// Depth of the subtree root (number of decisions).
    pub fn depth(&self) -> usize {
        self.trail.len()
    }

    /// Replay the trail against a copy of `base`: assign each decision and
    /// propagate to fixpoint after each.  Only the *last* decision can fail
    /// (everything above it was consistent when the checkpoint was frozen,
    /// and replaying from the same root is deterministic) — a failure means
    /// the subtree was empty all along and counts as one failure for the
    /// replaying worker.
    pub fn replay(
        &self,
        base: &DomainStore,
        propagators: &[Arc<dyn Propagator>],
    ) -> Result<DomainStore, Inconsistency> {
        let mut store = base.clone();
        for &(var, value) in &self.trail {
            store.assign(var, value)?;
            propagate_to_fixpoint(propagators, &mut store)?;
        }
        Ok(store)
    }
}

/// State shared by the racing runs of a portfolio search (see
/// [`crate::portfolio`]): the best cost found by *any* run, used as an extra
/// branch & bound pruning bound, and a cooperative cancellation flag raised
/// once some run proves optimality.
///
/// The bound only ever decreases (`publish` is a `fetch_min`), so pruning
/// against a stale read is always sound: a subtree pruned because its lower
/// bound reached an *older, larger* bound can contain no solution cheaper
/// than the final one either.
#[derive(Debug, Clone)]
pub struct SharedBound {
    /// Best cost published so far; `i64::MAX` encodes "none yet".
    bound: Arc<AtomicI64>,
    /// Raised to stop every run sharing this bound.
    cancel: Arc<AtomicBool>,
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl SharedBound {
    /// A fresh bound with no published incumbent.
    pub fn new() -> Self {
        SharedBound {
            bound: Arc::new(AtomicI64::new(i64::MAX)),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The best cost published by any run, if any.
    pub fn best_cost(&self) -> Option<i64> {
        // relaxed: a stale (larger) bound only weakens pruning, never
        // soundness — the bound is monotonically decreasing (fetch_min) and
        // is a pure scalar, carrying no other data to synchronize.
        let bound = self.bound.load(Ordering::Relaxed);
        (bound != i64::MAX).then_some(bound)
    }

    /// Publish a cost; keeps the minimum of all published costs.
    pub fn publish(&self, cost: i64) {
        // relaxed: the RMW is atomic at any ordering, so the bound stays
        // the true minimum; readers tolerate staleness (see `best_cost`).
        // `tests/model_check.rs` checks monotonicity under this ordering.
        self.bound.fetch_min(cost, Ordering::Relaxed);
    }

    /// Ask every run sharing this bound to stop.
    pub fn cancel(&self) {
        // relaxed: a pure flag — no data is published through it, and a
        // worker observing it late only explores a little longer.
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// True once [`SharedBound::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        // relaxed: see `cancel`.
        self.cancel.load(Ordering::Relaxed)
    }
}

/// A complete assignment: one value per variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    values: Vec<u32>,
}

impl Solution {
    pub(crate) fn from_store(store: &DomainStore) -> Self {
        Solution {
            values: (0..store.var_count())
                .map(|i| store.value(VarId(i)))
                .collect(),
        }
    }

    /// Value assigned to a variable.
    pub fn value(&self, var: VarId) -> u32 {
        self.values[var.0]
    }

    /// All values in variable order.
    pub fn values(&self) -> &[u32] {
        &self.values
    }
}

impl std::ops::Index<VarId> for Solution {
    type Output = u32;
    fn index(&self, var: VarId) -> &u32 {
        &self.values[var.0]
    }
}

/// How the next branching variable is chosen.
#[derive(Clone)]
pub enum VariableSelection {
    /// Smallest remaining domain first (first-fail).  Ties are broken by a
    /// static weight (largest weight first), then by rank, so that "VMs
    /// with important CPU and memory requirements are treated earlier than
    /// VMs with lesser requirements" as in the paper.
    FirstFail {
        /// Optional static weight per variable (larger = branch earlier).
        weights: Option<Vec<u64>>,
        /// Optional tie-break rank per variable (smaller = branch earlier);
        /// a variable missing from the vector ranks by its index.  Without
        /// ranks, ties fall through to the variable index — which is also
        /// the problem order on a freshly built model.  A *patched*
        /// persistent model reuses variable slots, so its indices no longer
        /// follow the problem order; supplying the problem order as ranks
        /// keeps its search tree bit-identical to a fresh build's.
        ranks: Option<Vec<u64>>,
    },
    /// Declaration order.
    InputOrder,
}

impl Default for VariableSelection {
    fn default() -> Self {
        VariableSelection::FirstFail {
            weights: None,
            ranks: None,
        }
    }
}

/// How the candidate values of the branching variable are ordered.
#[derive(Clone, Default)]
pub enum ValueSelection {
    /// Smallest value first.
    #[default]
    MinValue,
    /// A preferred value per variable is tried first (when still in the
    /// domain), then the rest in increasing order.  The placement model uses
    /// the current host of each VM as the preferred value.
    Preferred(Vec<Option<u32>>),
}

/// Restart policy of the branch & bound search.
///
/// Large placement instances are vulnerable to *heavy-tailed* search: a DFS
/// that commits to a bad prefix early can spend its whole budget in a
/// worthless subtree.  The classic mitigation (Luby, Sinclair & Zuckerman,
/// 1993) restarts the search from the root whenever the number of failures
/// since the last restart exceeds a budget drawn from the Luby sequence
/// (1, 1, 2, 1, 1, 2, 4, …) scaled by a constant.  Restarts keep the best
/// incumbent — the anytime contract is preserved — and each run diversifies
/// the value ordering deterministically, so successive runs explore
/// genuinely different prefixes without any randomness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Failure budget of run `i` is `scale * luby(i)`.
    pub scale: u64,
}

impl RestartPolicy {
    /// A Luby restart policy with the given scale (failures allowed in the
    /// first run).
    pub fn luby(scale: u64) -> Self {
        RestartPolicy {
            scale: scale.max(1),
        }
    }
}

/// The Luby sequence, 1-indexed: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4,
/// 8, …
pub fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    if (1u64 << k) - 1 == i {
        1u64 << (k - 1)
    } else {
        luby(i - ((1u64 << (k - 1)) - 1))
    }
}

/// Objective for branch & bound minimisation.
pub trait Objective {
    /// Exact cost of a complete assignment.
    fn evaluate(&self, store: &DomainStore) -> i64;

    /// A lower bound of the cost of any completion of a partial assignment.
    /// Must never exceed [`Objective::evaluate`] on any completion; returning
    /// `i64::MIN` disables pruning at that node.
    fn lower_bound(&self, store: &DomainStore) -> i64 {
        let _ = store;
        i64::MIN
    }
}

/// Search configuration: heuristics and limits.
#[derive(Clone, Default)]
pub struct SearchConfig {
    /// Variable-ordering heuristic.
    pub variable_selection: VariableSelection,
    /// Value-ordering heuristic.
    pub value_selection: ValueSelection,
    /// Wall-clock limit; `None` means unlimited.
    pub timeout: Option<Duration>,
    /// Maximum number of explored search nodes; `None` means unlimited.
    pub node_limit: Option<u64>,
    /// Incumbent seeding for [`Search::minimize`]: a complete assignment
    /// (one value per variable, in variable order) installed as the first
    /// incumbent before the tree search starts.  The placement model passes
    /// the current configuration here so that "no worse than today" holds
    /// from the very first node; an infeasible incumbent is ignored.
    pub incumbent: Option<Vec<u32>>,
    /// Luby-style restarts for [`Search::minimize`]; `None` disables them.
    pub restarts: Option<RestartPolicy>,
    /// Diversification index of this search (0 = the canonical ordering).
    /// The first run rotates its value ordering by this index and the Luby
    /// restart schedule starts at this position, so portfolio workers with
    /// distinct indices explore genuinely different prefixes.
    pub diversify: u64,
    /// Portfolio state shared with concurrent runs: an extra pruning bound
    /// fed by every run's improving solutions and a cancellation flag; see
    /// [`crate::portfolio`].  `None` outside portfolio races.
    pub shared: Option<SharedBound>,
}

impl SearchConfig {
    /// Configuration with a timeout (the 40 s limit of the Figure 10
    /// experiment for instance).
    pub fn with_timeout(timeout: Duration) -> Self {
        SearchConfig {
            timeout: Some(timeout),
            ..Default::default()
        }
    }
}

/// Statistics of one search run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of explored search nodes (decisions).
    pub nodes: u64,
    /// Number of failures (inconsistencies).
    pub failures: u64,
    /// Number of (improving) solutions found.
    pub solutions: u64,
    /// Number of Luby restarts performed by `minimize`.
    pub restarts: u64,
    /// True when the returned solution is the seeded incumbent (no improving
    /// solution was found by the tree search).
    pub incumbent_kept: bool,
    /// True when the search space was exhausted within the limits, i.e. the
    /// last solution is proven optimal (for `minimize`) or the absence of
    /// further solutions is proven.
    pub completed: bool,
    /// Wall-clock time spent searching, in milliseconds.
    pub elapsed_ms: u64,
    /// The diversification run index the search ended on (the value-order
    /// rotation of the last Luby run, counted from [`SearchConfig::diversify`]).
    /// A warm-started caller feeds `final_run + 1` into the `diversify` of the
    /// next solve so successive solves continue the restart schedule instead
    /// of re-exploring the same rotation prefixes.
    pub final_run: u64,
}

/// Result of a minimisation: best solution, its cost, and statistics.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// Best solution found, if any.
    pub best: Option<Solution>,
    /// Cost of the best solution.
    pub best_cost: Option<i64>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// A depth-first constraint search over a [`Model`].
pub struct Search<'m> {
    model: &'m Model,
    config: SearchConfig,
}

struct SearchState<'a> {
    propagators: &'a [Arc<dyn Propagator>],
    config: &'a SearchConfig,
    deadline: Option<Instant>,
    stats: SearchStats,
    stopped: bool,
    /// Failure count at which the current run must restart (`None`: never).
    failure_budget: Option<u64>,
    /// Set when the failure budget fired: the run is abandoned but the
    /// search as a whole is not stopped.
    restart_requested: bool,
    /// Index of the current restart run (0 for the first run); used to
    /// diversify the value ordering deterministically.
    run: u64,
}

enum Outcome {
    /// Keep exploring siblings.
    Continue,
    /// Stop the whole search (limit reached or first solution found in
    /// satisfaction mode).
    Stop,
}

impl<'m> Search<'m> {
    /// Build a search over `model` with the given configuration.
    pub fn new(model: &'m Model, config: SearchConfig) -> Self {
        Search { model, config }
    }

    /// Find the first solution, if any.
    pub fn solve(&self) -> Option<Solution> {
        self.solve_with_stats().0
    }

    /// Find the first solution and report statistics.
    pub fn solve_with_stats(&self) -> (Option<Solution>, SearchStats) {
        let start = Instant::now();
        let mut state = self.fresh_state(start);
        let mut first: Option<Solution> = None;
        let store = self.model.root_store();
        Self::dfs(&mut state, store, &mut |store, _state| {
            first = Some(Solution::from_store(store));
            Outcome::Stop
        });
        state.stats.completed = !state.stopped || first.is_some();
        state.stats.elapsed_ms = start.elapsed().as_millis() as u64;
        state.stats.final_run = state.run;
        (first, state.stats)
    }

    /// Enumerate up to `limit` solutions (useful in tests).
    pub fn solve_all(&self, limit: usize) -> Vec<Solution> {
        let start = Instant::now();
        let mut state = self.fresh_state(start);
        let mut solutions = Vec::new();
        let store = self.model.root_store();
        Self::dfs(&mut state, store, &mut |store, _state| {
            solutions.push(Solution::from_store(store));
            if solutions.len() >= limit {
                Outcome::Stop
            } else {
                Outcome::Continue
            }
        });
        solutions
    }

    /// Branch & bound minimisation of `objective`: explore the search tree,
    /// keep the best solution found, prune subtrees whose lower bound cannot
    /// improve it, and stop at the deadline.  The result is *anytime*: even
    /// when the deadline fires the best solution found so far is returned.
    ///
    /// When [`SearchConfig::incumbent`] carries a feasible assignment it is
    /// installed as the first incumbent, so the outcome can never be worse
    /// than the seed.  When [`SearchConfig::restarts`] is set the tree
    /// search restarts on a Luby schedule, keeping the incumbent across
    /// runs and rotating the value ordering of each run so that restarts
    /// explore different prefixes.
    pub fn minimize<O: Objective>(&self, objective: &O) -> MinimizeOutcome {
        let start = Instant::now();
        let mut state = self.fresh_state(start);
        let mut best: Option<Solution> = None;
        let mut best_cost: Option<i64> = None;

        // Seed the incumbent, if the caller provided a feasible one.
        if let Some(values) = &self.config.incumbent {
            if let Some(store) = self.validate_incumbent(values) {
                let cost = objective.evaluate(&store);
                best_cost = Some(cost);
                best = Some(Solution::from_store(&store));
                state.stats.incumbent_kept = true;
                if let Some(shared) = &self.config.shared {
                    shared.publish(cost);
                }
            }
        }

        loop {
            state.restart_requested = false;
            state.failure_budget = self
                .config
                .restarts
                .as_ref()
                .map(|p| state.stats.failures + p.scale * luby(state.run + 1));
            let store = self.model.root_store();
            Self::dfs_bnb(&mut state, store, objective, &mut best, &mut best_cost);
            if !state.restart_requested || state.stopped {
                break;
            }
            state.run += 1;
            state.stats.restarts += 1;
        }

        state.stats.completed = !state.stopped;
        state.stats.elapsed_ms = start.elapsed().as_millis() as u64;
        state.stats.final_run = state.run;
        MinimizeOutcome {
            best,
            best_cost,
            stats: state.stats,
        }
    }

    fn fresh_state(&self, start: Instant) -> SearchState<'_> {
        SearchState {
            propagators: self.model.propagators(),
            config: &self.config,
            deadline: self.config.timeout.map(|t| start + t),
            stats: SearchStats::default(),
            stopped: false,
            failure_budget: None,
            restart_requested: false,
            run: self.config.diversify,
        }
    }

    /// Check that an incumbent assignment is complete and consistent with
    /// every propagator; returns the fully-assigned store when it is.
    pub(crate) fn validate_incumbent(&self, values: &[u32]) -> Option<DomainStore> {
        if values.len() != self.model.var_count() {
            return None;
        }
        let mut store = self.model.root_store();
        for (i, &value) in values.iter().enumerate() {
            if store.assign(VarId(i), value).is_err() {
                return None;
            }
        }
        if propagate_to_fixpoint(self.model.propagators(), &mut store).is_err() {
            return None;
        }
        store.all_fixed().then_some(store)
    }

    // ------------------------------------------------------------------
    // DFS engines
    // ------------------------------------------------------------------

    fn limits_reached(state: &mut SearchState) -> bool {
        if state.stopped {
            return true;
        }
        if let Some(shared) = &state.config.shared {
            if shared.is_cancelled() {
                state.stopped = true;
                return true;
            }
        }
        if let Some(deadline) = state.deadline {
            if Instant::now() >= deadline {
                state.stopped = true;
                return true;
            }
        }
        if let Some(limit) = state.config.node_limit {
            if state.stats.nodes >= limit {
                state.stopped = true;
                return true;
            }
        }
        false
    }

    fn dfs(
        state: &mut SearchState,
        mut store: DomainStore,
        on_solution: &mut dyn FnMut(&DomainStore, &mut SearchState) -> Outcome,
    ) -> Outcome {
        if Self::limits_reached(state) {
            return Outcome::Stop;
        }
        state.stats.nodes += 1;
        if let Err(_e) = propagate_to_fixpoint(state.propagators, &mut store) {
            state.stats.failures += 1;
            return Outcome::Continue;
        }
        if store.all_fixed() {
            state.stats.solutions += 1;
            return on_solution(&store, state);
        }
        let var = Self::select_variable(&state.config.variable_selection, &store);
        let values = Self::order_values(&state.config.value_selection, var, &store);
        for value in values {
            let mut child = store.clone();
            if child.assign(var, value).is_err() {
                state.stats.failures += 1;
                continue;
            }
            match Self::dfs(state, child, on_solution) {
                Outcome::Continue => {}
                Outcome::Stop => return Outcome::Stop,
            }
        }
        Outcome::Continue
    }

    fn dfs_bnb<O: Objective>(
        state: &mut SearchState,
        mut store: DomainStore,
        objective: &O,
        best: &mut Option<Solution>,
        best_cost: &mut Option<i64>,
    ) -> Outcome {
        if Self::limits_reached(state) {
            return Outcome::Stop;
        }
        if let Some(budget) = state.failure_budget {
            if state.stats.failures >= budget {
                state.restart_requested = true;
                return Outcome::Stop;
            }
        }
        state.stats.nodes += 1;
        if let Err(_e) = propagate_to_fixpoint(state.propagators, &mut store) {
            state.stats.failures += 1;
            return Outcome::Continue;
        }
        // Bound: prune when the partial assignment cannot beat the incumbent
        // — the local one, or the best published by any portfolio worker.
        let shared_best = state
            .config
            .shared
            .as_ref()
            .and_then(|shared| shared.best_cost());
        let prune_bound = match (*best_cost, shared_best) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (bound, None) | (None, bound) => bound,
        };
        if let Some(current_best) = prune_bound {
            if objective.lower_bound(&store) >= current_best {
                state.stats.failures += 1;
                return Outcome::Continue;
            }
        }
        if store.all_fixed() {
            let cost = objective.evaluate(&store);
            let improves = best_cost.map(|b| cost < b).unwrap_or(true);
            if improves {
                *best = Some(Solution::from_store(&store));
                *best_cost = Some(cost);
                state.stats.solutions += 1;
                state.stats.incumbent_kept = false;
                if let Some(shared) = &state.config.shared {
                    shared.publish(cost);
                }
            }
            return Outcome::Continue;
        }
        let var = Self::select_variable(&state.config.variable_selection, &store);
        let values =
            Self::order_values_diversified(&state.config.value_selection, var, &store, state.run);
        for value in values {
            let mut child = store.clone();
            if child.assign(var, value).is_err() {
                state.stats.failures += 1;
                continue;
            }
            match Self::dfs_bnb(state, child, objective, best, best_cost) {
                Outcome::Continue => {}
                Outcome::Stop => return Outcome::Stop,
            }
        }
        Outcome::Continue
    }

    pub(crate) fn select_variable(selection: &VariableSelection, store: &DomainStore) -> VarId {
        let unfixed = store.unfixed_vars();
        debug_assert!(!unfixed.is_empty());
        match selection {
            VariableSelection::InputOrder => unfixed[0],
            VariableSelection::FirstFail { weights, ranks } => {
                let weight = |v: VarId| -> u64 {
                    weights
                        .as_ref()
                        .and_then(|w| w.get(v.0).copied())
                        .unwrap_or(0)
                };
                let rank = |v: VarId| -> u64 {
                    ranks
                        .as_ref()
                        .and_then(|r| r.get(v.0).copied())
                        .unwrap_or(v.0 as u64)
                };
                *unfixed
                    .iter()
                    .min_by_key(|&&v| {
                        (
                            store.domain(v).size(),
                            std::cmp::Reverse(weight(v)),
                            rank(v),
                            v.0,
                        )
                    })
                    .expect("at least one unfixed variable")
            }
        }
    }

    fn order_values(selection: &ValueSelection, var: VarId, store: &DomainStore) -> Vec<u32> {
        Self::order_values_diversified(selection, var, store, 0)
    }

    /// Value ordering of restart run `run`: the preferred value (when any)
    /// stays first, and the remaining values are rotated by the run index so
    /// that successive Luby runs branch into different subtrees first.
    pub(crate) fn order_values_diversified(
        selection: &ValueSelection,
        var: VarId,
        store: &DomainStore,
        run: u64,
    ) -> Vec<u32> {
        let mut values = store.domain(var).values();
        let fixed_prefix = match selection {
            ValueSelection::MinValue => 0,
            ValueSelection::Preferred(preferred) => {
                if let Some(Some(p)) = preferred.get(var.0) {
                    if let Some(pos) = values.iter().position(|v| v == p) {
                        values.remove(pos);
                        values.insert(0, *p);
                        1
                    } else {
                        0
                    }
                } else {
                    0
                }
            }
        };
        let tail = &mut values[fixed_prefix..];
        if run > 0 && tail.len() > 1 {
            tail.rotate_left((run % tail.len() as u64) as usize);
        }
        values
    }
}

/// Convenience objective backed by closures.
pub struct ClosureObjective<E, L>
where
    E: Fn(&DomainStore) -> i64,
    L: Fn(&DomainStore) -> i64,
{
    evaluate: E,
    lower_bound: L,
}

impl<E, L> ClosureObjective<E, L>
where
    E: Fn(&DomainStore) -> i64,
    L: Fn(&DomainStore) -> i64,
{
    /// Build an objective from an evaluation closure and a lower-bound
    /// closure.
    pub fn new(evaluate: E, lower_bound: L) -> Self {
        ClosureObjective {
            evaluate,
            lower_bound,
        }
    }
}

impl<E, L> Objective for ClosureObjective<E, L>
where
    E: Fn(&DomainStore) -> i64,
    L: Fn(&DomainStore) -> i64,
{
    fn evaluate(&self, store: &DomainStore) -> i64 {
        (self.evaluate)(store)
    }

    fn lower_bound(&self, store: &DomainStore) -> i64 {
        (self.lower_bound)(store)
    }
}

/// Convenience: raised when a model that must have a solution has none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoSolution;

impl std::fmt::Display for NoSolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the constraint model has no solution")
    }
}

impl std::error::Error for NoSolution {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{AllDifferent, BinPacking, LinearLeq};
    use crate::store::Model;

    #[test]
    fn solve_finds_a_feasible_assignment() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..4).map(|_| m.new_var(0, 3)).collect();
        m.post(AllDifferent::new(vars.clone()));
        let s = Search::new(&m, SearchConfig::default()).solve().unwrap();
        let mut values: Vec<u32> = vars.iter().map(|&v| s[v]).collect();
        values.sort();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unsatisfiable_model_returns_none() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..3).map(|_| m.new_var(0, 1)).collect();
        m.post(AllDifferent::new(vars));
        assert!(Search::new(&m, SearchConfig::default()).solve().is_none());
    }

    #[test]
    fn solve_all_enumerates_every_solution() {
        // Two variables in [0,1] with no constraint: 4 solutions.
        let mut m = Model::new();
        m.new_var(0, 1);
        m.new_var(0, 1);
        let all = Search::new(&m, SearchConfig::default()).solve_all(100);
        assert_eq!(all.len(), 4);
        // Limit is respected.
        let some = Search::new(&m, SearchConfig::default()).solve_all(2);
        assert_eq!(some.len(), 2);
    }

    #[test]
    fn minimize_finds_the_optimum_and_proves_it() {
        // Minimise x + y subject to x + y >= 3 encoded as 3 - x - y <= 0
        // via LinearLeq on complemented variables is awkward; instead use
        // bin-packing to force a spread and minimise a weighted sum.
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let y = m.new_var(0, 5);
        // x + y <= 8 (loose).
        m.post(LinearLeq::sum_leq(vec![x, y], 8));
        // Objective: minimise 2x + y.
        let objective = ClosureObjective::new(
            move |store: &DomainStore| 2 * store.value(x) as i64 + store.value(y) as i64,
            move |store: &DomainStore| 2 * store.min(x) as i64 + store.min(y) as i64,
        );
        let outcome = Search::new(&m, SearchConfig::default()).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(0));
        assert!(outcome.stats.completed);
        let best = outcome.best.unwrap();
        assert_eq!(best[x], 0);
        assert_eq!(best[y], 0);
    }

    #[test]
    fn minimize_respects_preferred_values() {
        // Without constraints, the preferred value should be found first and
        // never improved upon if it is already optimal for the objective.
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let objective = ClosureObjective::new(
            move |store: &DomainStore| {
                // Cost 0 when x keeps its "current placement" 7, 1 otherwise.
                if store.value(x) == 7 {
                    0
                } else {
                    1
                }
            },
            |_| 0,
        );
        let config = SearchConfig {
            value_selection: ValueSelection::Preferred(vec![Some(7)]),
            ..Default::default()
        };
        let outcome = Search::new(&m, config).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(0));
        assert_eq!(outcome.best.unwrap()[x], 7);
        // The very first solution explored was already the optimum.
        assert_eq!(outcome.stats.solutions, 1);
    }

    #[test]
    fn first_fail_branches_on_smallest_domain() {
        let mut m = Model::new();
        let _wide = m.new_var(0, 9);
        let narrow = m.new_var(0, 1);
        let store = m.root_store();
        let chosen = Search::select_variable(&VariableSelection::default(), &store);
        assert_eq!(chosen, narrow);
    }

    #[test]
    fn first_fail_ties_break_by_weight() {
        let mut m = Model::new();
        let light = m.new_var(0, 1);
        let heavy = m.new_var(0, 1);
        let store = m.root_store();
        let selection = VariableSelection::FirstFail {
            weights: Some(vec![1, 10]),
            ranks: None,
        };
        let chosen = Search::select_variable(&selection, &store);
        assert_eq!(chosen, heavy);
        let _ = light;
    }

    #[test]
    fn first_fail_ties_break_by_rank_before_index() {
        // Same domains, same weights: without ranks the lower index wins;
        // ranks invert the order, which is how a patched model whose
        // variable slots were recycled out of problem order reproduces the
        // fresh build's branching.
        let mut m = Model::new();
        let first = m.new_var(0, 1);
        let second = m.new_var(0, 1);
        let store = m.root_store();
        let unranked = VariableSelection::FirstFail {
            weights: None,
            ranks: None,
        };
        assert_eq!(Search::select_variable(&unranked, &store), first);
        let ranked = VariableSelection::FirstFail {
            weights: None,
            ranks: Some(vec![1, 0]),
        };
        assert_eq!(Search::select_variable(&ranked, &store), second);
    }

    #[test]
    fn identity_ranks_match_the_unranked_ordering() {
        let mut m = Model::new();
        let a = m.new_var(0, 2);
        let _b = m.new_var(0, 2);
        let store = m.root_store();
        let identity = VariableSelection::FirstFail {
            weights: Some(vec![5, 5]),
            ranks: Some(vec![0, 1]),
        };
        let none = VariableSelection::FirstFail {
            weights: Some(vec![5, 5]),
            ranks: None,
        };
        assert_eq!(
            Search::select_variable(&identity, &store),
            Search::select_variable(&none, &store)
        );
        assert_eq!(Search::select_variable(&identity, &store), a);
    }

    #[test]
    fn node_limit_stops_the_search() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..8).map(|_| m.new_var(0, 7)).collect();
        m.post(AllDifferent::new(vars));
        let config = SearchConfig {
            node_limit: Some(3),
            ..Default::default()
        };
        let (sol, stats) = Search::new(&m, config).solve_with_stats();
        assert!(sol.is_none());
        assert!(stats.nodes <= 4);
    }

    #[test]
    fn timeout_is_anytime_for_minimize() {
        // A big enough problem that optimality is not proven instantly, with
        // a tiny timeout: we must still get *a* solution back (or none, but
        // the run must terminate quickly) and completed == false if stopped.
        let mut m = Model::new();
        let vars: Vec<_> = (0..10).map(|_| m.new_var(0, 9)).collect();
        m.post(BinPacking::new(vars.clone(), vec![1; 10], vec![2; 10]));
        let objective = ClosureObjective::new(
            {
                let vars = vars.clone();
                move |store: &DomainStore| vars.iter().map(|&v| store.value(v) as i64).sum()
            },
            |_| i64::MIN,
        );
        let config = SearchConfig {
            timeout: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        let outcome = Search::new(&m, config).minimize(&objective);
        // Either it completed very fast (tiny problem for the machine) or it
        // was cut; in both cases the call returns promptly and coherently.
        if !outcome.stats.completed {
            assert!(outcome.stats.elapsed_ms <= 5_000);
        }
        assert!(outcome.best.is_some());
    }

    #[test]
    fn luby_sequence_matches_the_literature() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn incumbent_bounds_the_outcome_even_with_no_search_budget() {
        // With a zero node budget the tree search explores nothing: the
        // seeded incumbent must come back unchanged.
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let objective =
            ClosureObjective::new(move |store: &DomainStore| store.value(x) as i64, |_| 0);
        let config = SearchConfig {
            node_limit: Some(0),
            incumbent: Some(vec![3]),
            ..Default::default()
        };
        let outcome = Search::new(&m, config).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(3));
        assert_eq!(outcome.best.unwrap()[x], 3);
        assert!(outcome.stats.incumbent_kept);
    }

    #[test]
    fn search_improves_on_the_incumbent_when_it_can() {
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let objective =
            ClosureObjective::new(move |store: &DomainStore| store.value(x) as i64, |_| 0);
        let config = SearchConfig {
            incumbent: Some(vec![7]),
            ..Default::default()
        };
        let outcome = Search::new(&m, config).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(0));
        assert!(!outcome.stats.incumbent_kept);
        assert!(outcome.stats.completed);
    }

    #[test]
    fn infeasible_incumbents_are_ignored() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..2).map(|_| m.new_var(0, 1)).collect();
        m.post(AllDifferent::new(vars.clone()));
        let objective = ClosureObjective::new(
            {
                let vars = vars.clone();
                move |store: &DomainStore| vars.iter().map(|&v| store.value(v) as i64).sum()
            },
            |_| 0,
        );
        let config = SearchConfig {
            // Violates AllDifferent: must be discarded, not trusted.
            incumbent: Some(vec![1, 1]),
            ..Default::default()
        };
        let outcome = Search::new(&m, config).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(1), "0 + 1 in some order");
        assert!(outcome.stats.completed);
    }

    #[test]
    fn luby_restarts_preserve_optimality_and_are_counted() {
        // A tight packing with real dead-ends: 6 items of size 3 on 3 bins
        // of capacity 6, so any third item on a bin wipes out.  A scale-1
        // Luby policy must restart, and the search must still terminate
        // with the proven optimum because the budgets grow geometrically.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.new_var(0, 2)).collect();
        m.post(BinPacking::new(vars.clone(), vec![3; 6], vec![6; 3]));
        // Reward putting early items on high bins so that the min-value DFS
        // explores (and prunes) a lot before the optimum; the lower bound
        // over fixed variables makes the bound pruning register failures,
        // which is what the Luby budget counts.
        let weight = |i: usize, v: u32| (6 - i as i64) * (2 - v as i64);
        let objective = ClosureObjective::new(
            {
                let vars = vars.clone();
                move |store: &DomainStore| {
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| weight(i, store.value(v)))
                        .sum()
                }
            },
            {
                let vars = vars.clone();
                move |store: &DomainStore| {
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            store
                                .domain(v)
                                .iter()
                                .map(|value| weight(i, value))
                                .min()
                                .unwrap_or(0)
                        })
                        .sum()
                }
            },
        );
        let config = SearchConfig {
            restarts: Some(RestartPolicy::luby(1)),
            ..Default::default()
        };
        let outcome = Search::new(&m, config).minimize(&objective);
        assert!(outcome.stats.completed);
        assert!(outcome.stats.restarts > 0, "scale-1 budgets must fire");
        // Optimum: the two earliest items on bin 2, the next two on bin 1,
        // the last two on bin 0 -> cost 0+0 + (4+3)*1 + (2+1)*2 = 13.
        assert_eq!(outcome.best_cost, Some(13));
    }

    #[test]
    fn bin_packing_placement_end_to_end() {
        // 4 VMs of CPU demand 1 on 2 nodes of capacity 2: a perfect split.
        let mut m = Model::new();
        let vars: Vec<_> = (0..4).map(|_| m.new_var(0, 1)).collect();
        m.post(BinPacking::new(vars.clone(), vec![1; 4], vec![2, 2]));
        let s = Search::new(&m, SearchConfig::default()).solve().unwrap();
        let on_zero = vars.iter().filter(|&&v| s[v] == 0).count();
        assert_eq!(on_zero, 2);
    }
}
