//! The propagator interface and the fixpoint propagation loop.
//!
//! Propagators narrow variable domains until no propagator can prune any
//! further (a fixpoint) or some domain is wiped out (an [`Inconsistency`]).
//! The loop is intentionally simple: after any propagator reports a change,
//! the whole set is re-run.  At the scale of the paper's placement problems
//! (hundreds of variables, a handful of global constraints) this costs far
//! less than the search itself.

use crate::store::{DomainStore, VarId};

/// Raised when a propagator (or a search decision) empties a domain or
/// detects that a constraint can no longer be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    variable: Option<VarId>,
    reason: String,
}

impl Inconsistency {
    /// An inconsistency caused by the wipeout of the domain of `var`.
    pub fn wipeout(var: VarId) -> Self {
        Inconsistency {
            variable: Some(var),
            reason: format!("domain of x{} wiped out", var.0),
        }
    }

    /// An inconsistency detected by a constraint, with a description.
    pub fn failure(reason: impl Into<String>) -> Self {
        Inconsistency {
            variable: None,
            reason: reason.into(),
        }
    }

    /// The variable whose domain was wiped out, if any.
    pub fn variable(&self) -> Option<VarId> {
        self.variable
    }

    /// Human-readable description of the failure.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inconsistency: {}", self.reason)
    }
}

impl std::error::Error for Inconsistency {}

/// Outcome of one propagator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationResult {
    /// The propagator pruned at least one value.
    Changed,
    /// The propagator pruned nothing.
    Unchanged,
}

/// A constraint propagator.
///
/// Propagators are stateless (all their parameters are immutable); they read
/// and narrow the [`DomainStore`] they are given.  They must be *monotone*
/// (never re-add values) and *sound* (never remove a value that belongs to a
/// solution of the constraint).
pub trait Propagator: Send + Sync {
    /// Narrow the store.  Return whether anything changed, or an
    /// [`Inconsistency`] when the constraint cannot be satisfied anymore.
    fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency>;

    /// A short name used in debugging output.
    fn name(&self) -> &str {
        "propagator"
    }
}

/// Run every propagator until none of them changes the store (fixpoint).
///
/// Returns an [`Inconsistency`] as soon as any propagator fails.
pub fn propagate_to_fixpoint(
    propagators: &[std::sync::Arc<dyn Propagator>],
    store: &mut DomainStore,
) -> Result<(), Inconsistency> {
    loop {
        let mut changed = false;
        for p in propagators {
            match p.propagate(store)? {
                PropagationResult::Changed => changed = true,
                PropagationResult::Unchanged => {}
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Model;
    use std::sync::Arc;

    /// Toy propagator enforcing x < y on bounds.
    struct LessThan {
        x: VarId,
        y: VarId,
    }

    impl Propagator for LessThan {
        fn propagate(&self, store: &mut DomainStore) -> Result<PropagationResult, Inconsistency> {
            let mut changed = false;
            // x < y  =>  x <= max(y) - 1, y >= min(x) + 1
            let y_max = store.max(self.y);
            if y_max == 0 {
                return Err(Inconsistency::failure("y must be positive"));
            }
            changed |= store.remove_above(self.x, y_max - 1)?;
            let x_min = store.min(self.x);
            changed |= store.remove_below(self.y, x_min + 1)?;
            Ok(if changed {
                PropagationResult::Changed
            } else {
                PropagationResult::Unchanged
            })
        }

        fn name(&self) -> &str {
            "less-than"
        }
    }

    #[test]
    fn fixpoint_chains_propagations() {
        // x < y < z, all in [0, 2]: forces x=0, y=1, z=2.
        let mut m = Model::new();
        let x = m.new_var(0, 2);
        let y = m.new_var(0, 2);
        let z = m.new_var(0, 2);
        let props: Vec<Arc<dyn Propagator>> = vec![
            Arc::new(LessThan { x, y }),
            Arc::new(LessThan { x: y, y: z }),
        ];
        let mut store = m.root_store();
        propagate_to_fixpoint(&props, &mut store).unwrap();
        assert_eq!(store.value(x), 0);
        assert_eq!(store.value(y), 1);
        assert_eq!(store.value(z), 2);
    }

    #[test]
    fn fixpoint_detects_inconsistency() {
        // x < y with both fixed to the same value.
        let mut m = Model::new();
        let x = m.new_var(1, 1);
        let y = m.new_var(1, 1);
        let props: Vec<Arc<dyn Propagator>> = vec![Arc::new(LessThan { x, y })];
        let mut store = m.root_store();
        assert!(propagate_to_fixpoint(&props, &mut store).is_err());
    }

    #[test]
    fn inconsistency_reports() {
        let inc = Inconsistency::wipeout(VarId(3));
        assert_eq!(inc.variable(), Some(VarId(3)));
        assert!(inc.to_string().contains("x3"));
        let inc = Inconsistency::failure("capacity exceeded");
        assert_eq!(inc.variable(), None);
        assert!(inc.to_string().contains("capacity exceeded"));
    }
}
