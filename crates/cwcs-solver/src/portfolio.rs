//! Parallel portfolio search: race diversified branch & bound runs under
//! one anytime budget.
//!
//! The placement solves of the paper are *anytime*: whatever the search can
//! prove inside its 5 s window is what the control loop executes.  Luby
//! restart runs are embarrassingly parallel, so the classic way to shrink
//! that anytime gap is a **portfolio**: `N` workers race the same model,
//! each diversified so they explore different prefixes, and the best
//! solution found by *any* worker wins.
//!
//! # Diversification
//!
//! Worker `k` runs [`Search::minimize`] with
//! [`SearchConfig::diversify`]` = k`:
//!
//! * its value ordering is rotated by `k` (the preferred value — a VM's
//!   current host — stays first, so the cheap "keep everything in place"
//!   prefix is still tried by every worker);
//! * its Luby restart schedule starts at position `k`, so workers restart
//!   at different failure counts and re-diversify on different boundaries.
//!
//! Worker 0 is the canonical ordering: a 1-worker portfolio explores
//! exactly the tree the plain [`Search`] explores.
//!
//! # Shared-bound / cancellation protocol
//!
//! In the default (timed) mode every worker shares a [`SharedBound`]:
//!
//! * each improving solution's cost is **published** (`fetch_min`), and
//!   every worker prunes against the minimum of its local incumbent and the
//!   published bound — so all workers prune against the best solution found
//!   by any of them;
//! * the bound only decreases, so pruning against a stale read is sound: a
//!   subtree whose lower bound reached an older (larger) bound cannot hold
//!   anything cheaper than the final bound either;
//! * a worker that **completes** (exhausts its tree within the limits) has
//!   proven that no solution beats the published bound: it raises the
//!   cancellation flag and every other worker stops at its next node;
//! * the wall-clock budget needs no flag: every worker carries the same
//!   deadline and stops on its own.
//!
//! A worker that completes proves *global* optimality even though it pruned
//! against other workers' solutions: the pruned subtrees contain no
//! solution cheaper than the final bound, and the explored remainder
//! produced none either.
//!
//! # Deterministic reduction mode
//!
//! Sharing makes the explored tree depend on thread timing, which is
//! incompatible with the byte-identical artifacts the bench gate and the
//! determinism suite require.  With [`PortfolioConfig::deterministic`] the
//! workers run **independently** (no shared bound, no cancellation), each
//! under the same fixed node budget, and the winner is chosen by the
//! `(cost, worker id)` tie-break — the outcome is a pure function of the
//! model and the configuration, whatever the machine or scheduling.

use std::thread;
use std::time::Instant;

use crate::search::{MinimizeOutcome, Objective, Search, SearchConfig, SearchStats, SharedBound};
use crate::store::Model;
use crate::Solution;

/// Tuning of a [`PortfolioSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Number of racing workers (clamped to at least 1).
    pub workers: usize,
    /// Deterministic reduction mode: workers run independently under fixed
    /// node budgets and the winner is the `(cost, worker id)` minimum; no
    /// shared bound, no cancellation (see the module docs).
    pub deterministic: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            workers: 1,
            deterministic: false,
        }
    }
}

impl PortfolioConfig {
    /// A timed portfolio with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        PortfolioConfig {
            workers,
            ..Default::default()
        }
    }
}

/// What one worker of the race did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index (also its diversification offset).
    pub worker: usize,
    /// Statistics of the worker's own search.
    pub stats: SearchStats,
    /// Best cost the worker found locally, if any.
    pub best_cost: Option<i64>,
}

/// Statistics of one portfolio race.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Per-worker reports, in worker order.
    pub workers: Vec<WorkerReport>,
    /// Index of the winning worker (`None` when no worker found a
    /// solution).  Ties are broken by the smallest worker index.
    pub winner: Option<usize>,
    /// Wall-clock time of the whole race, in milliseconds.
    pub elapsed_ms: u64,
}

impl PortfolioStats {
    /// The winning worker's report, if any worker found a solution.
    pub fn winning_worker(&self) -> Option<&WorkerReport> {
        self.winner.map(|w| &self.workers[w])
    }
}

/// Result of a portfolio minimisation.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Best solution found by any worker.
    pub best: Option<Solution>,
    /// Cost of the best solution.
    pub best_cost: Option<i64>,
    /// Aggregate statistics: node/failure/solution/restart counts summed
    /// over the workers, `completed` when any worker proved optimality,
    /// `incumbent_kept` from the winning worker, `elapsed_ms` the race's
    /// wall-clock time.
    pub stats: SearchStats,
    /// The race breakdown: per-worker statistics and the winner.
    pub portfolio: PortfolioStats,
}

/// A parallel portfolio of diversified branch & bound searches over one
/// [`Model`] (see the module docs for the protocol).
pub struct PortfolioSearch<'m> {
    model: &'m Model,
    base: SearchConfig,
    config: PortfolioConfig,
}

impl<'m> PortfolioSearch<'m> {
    /// Build a portfolio over `model`.  `base` carries the heuristics and
    /// limits every worker shares (timeout, node budget, incumbent,
    /// restarts); worker `k` derives its own configuration by offsetting
    /// [`SearchConfig::diversify`] by `k`.
    pub fn new(model: &'m Model, base: SearchConfig, config: PortfolioConfig) -> Self {
        PortfolioSearch {
            model,
            base,
            config,
        }
    }

    /// Race the workers and reduce: the best solution found by any worker,
    /// with ties broken by the smallest worker index.
    pub fn minimize<O: Objective + Sync>(&self, objective: &O) -> PortfolioOutcome {
        let start = Instant::now();
        let workers = self.config.workers.max(1);
        let shared = (!self.config.deterministic).then(SharedBound::new);

        let outcomes: Vec<MinimizeOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let mut config = self.base.clone();
                    config.diversify = self.base.diversify + worker as u64;
                    config.shared = shared.clone();
                    let model = self.model;
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let outcome = Search::new(model, config).minimize(objective);
                        // Optimality proven by any worker is global (module
                        // docs): stop the rest of the race.
                        if outcome.stats.completed {
                            if let Some(shared) = &shared {
                                shared.cancel();
                            }
                        }
                        outcome
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("portfolio worker panicked"))
                .collect()
        });

        let winner = outcomes
            .iter()
            .enumerate()
            .filter_map(|(worker, outcome)| outcome.best_cost.map(|cost| (cost, worker)))
            .min()
            .map(|(_, worker)| worker);

        let mut stats = SearchStats {
            elapsed_ms: start.elapsed().as_millis() as u64,
            ..Default::default()
        };
        let mut reports = Vec::with_capacity(outcomes.len());
        for (worker, outcome) in outcomes.iter().enumerate() {
            stats.nodes += outcome.stats.nodes;
            stats.failures += outcome.stats.failures;
            stats.solutions += outcome.stats.solutions;
            stats.restarts += outcome.stats.restarts;
            stats.completed |= outcome.stats.completed;
            reports.push(WorkerReport {
                worker,
                stats: outcome.stats.clone(),
                best_cost: outcome.best_cost,
            });
        }
        if let Some(winner) = winner {
            stats.incumbent_kept = outcomes[winner].stats.incumbent_kept;
        }

        let (best, best_cost) = match winner {
            Some(winner) => (outcomes[winner].best.clone(), outcomes[winner].best_cost),
            None => (None, None),
        };
        PortfolioOutcome {
            best,
            best_cost,
            stats,
            portfolio: PortfolioStats {
                workers: reports,
                winner,
                elapsed_ms: start.elapsed().as_millis() as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{AllDifferent, BinPacking};
    use crate::search::{ClosureObjective, RestartPolicy};
    use crate::DomainStore;

    /// A tight packing with a non-trivial optimum (the Luby-restart test
    /// model of `search.rs`): 6 items of size 3 over 3 bins of capacity 6.
    fn packing_model() -> (Model, Vec<crate::VarId>) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.new_var(0, 2)).collect();
        m.post(BinPacking::new(vars.clone(), vec![3; 6], vec![6; 3]));
        (m, vars)
    }

    fn packing_objective(vars: Vec<crate::VarId>) -> impl Objective + Sync {
        let weight = |i: usize, v: u32| (6 - i as i64) * (2 - v as i64);
        ClosureObjective::new(
            {
                let vars = vars.clone();
                move |store: &DomainStore| {
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| weight(i, store.value(v)))
                        .sum()
                }
            },
            {
                let vars = vars.clone();
                move |store: &DomainStore| {
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            store
                                .domain(v)
                                .iter()
                                .map(|value| weight(i, value))
                                .min()
                                .unwrap_or(0)
                        })
                        .sum()
                }
            },
        )
    }

    #[test]
    fn portfolio_finds_the_proven_optimum() {
        let (m, vars) = packing_model();
        let objective = packing_objective(vars);
        let config = SearchConfig {
            restarts: Some(RestartPolicy::luby(1)),
            ..Default::default()
        };
        let outcome =
            PortfolioSearch::new(&m, config, PortfolioConfig::with_workers(4)).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(13));
        assert!(outcome.stats.completed);
        assert_eq!(outcome.portfolio.workers.len(), 4);
        let winner = outcome.portfolio.winning_worker().expect("has a winner");
        assert_eq!(winner.best_cost, Some(13));
    }

    #[test]
    fn deterministic_reduction_is_reproducible() {
        let (m, vars) = packing_model();
        let objective = packing_objective(vars);
        let run = || {
            let config = SearchConfig {
                node_limit: Some(40),
                restarts: Some(RestartPolicy::luby(1)),
                ..Default::default()
            };
            let portfolio = PortfolioConfig {
                workers: 3,
                deterministic: true,
            };
            PortfolioSearch::new(&m, config, portfolio).minimize(&objective)
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.portfolio.winner, b.portfolio.winner);
        for (wa, wb) in a.portfolio.workers.iter().zip(&b.portfolio.workers) {
            assert_eq!(wa.stats.nodes, wb.stats.nodes);
            assert_eq!(wa.stats.failures, wb.stats.failures);
            assert_eq!(wa.best_cost, wb.best_cost);
        }
    }

    #[test]
    fn unsatisfiable_models_yield_no_winner() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..3).map(|_| m.new_var(0, 1)).collect();
        m.post(AllDifferent::new(vars.clone()));
        let objective = ClosureObjective::new(|_| 0, |_| 0);
        let outcome = PortfolioSearch::new(
            &m,
            SearchConfig::default(),
            PortfolioConfig::with_workers(2),
        )
        .minimize(&objective);
        assert!(outcome.best.is_none());
        assert_eq!(outcome.portfolio.winner, None);
        assert!(outcome.stats.completed, "infeasibility is proven");
    }

    #[test]
    fn cancellation_stops_losing_workers() {
        // A model any worker proves instantly: every worker either completes
        // on its own or is cancelled; the race must terminate promptly and
        // still report the optimum.
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let objective =
            ClosureObjective::new(move |store: &DomainStore| store.value(x) as i64, |_| 0);
        let outcome = PortfolioSearch::new(
            &m,
            SearchConfig::default(),
            PortfolioConfig::with_workers(8),
        )
        .minimize(&objective);
        assert_eq!(outcome.best_cost, Some(0));
        assert!(outcome.stats.completed);
    }
}
