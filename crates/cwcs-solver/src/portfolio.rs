//! Parallel portfolio search: a cooperative, partitioned branch & bound
//! under one anytime budget.
//!
//! The placement solves of the paper are *anytime*: whatever the search can
//! prove inside its 5 s window is what the control loop executes.  The
//! first portfolio (PR 4) raced `N` *duplicated* trees — cheap to build,
//! but the workers mostly re-explored each other's space.  The portfolio is
//! now **partitioned**: the value choices of the *root* decision are dealt
//! round-robin across the workers, so the initial frontiers are disjoint
//! and the union of the workers' trees is exactly the serial tree, explored
//! once instead of `N` times.
//!
//! # Partition / steal protocol
//!
//! * [`partition_root`] propagates the root store once, picks the canonical
//!   branching variable with the configured heuristics and deals its value
//!   choices round-robin by worker id — a deterministic **exact cover** of
//!   the root domain (no value lost, none duplicated).
//! * Each worker owns a Chase–Lev deque ([`crate::deque`]) seeded with its
//!   slice, one [`SubtreeCheckpoint`] per root value.  It pops from the
//!   bottom (LIFO — its own traversal stays depth-first) and, when its
//!   deque runs low, **donates** the untried siblings of the node it is
//!   expanding as frozen checkpoints, so thieves can pick them up.
//! * An idle worker first drains its own deque, then **steals** the oldest
//!   (shallowest, largest) checkpoint from a busy victim and reconstructs
//!   the subtree by replaying the decision trail against the shared root
//!   store.
//! * A shared `pending` counter tracks checkpoints published but not yet
//!   fully explored.  The search space is globally exhausted — optimality
//!   is **proven** — exactly when `pending` reaches zero and no worker
//!   stopped early.  This replaces the duplicated-race rule "any completed
//!   worker proves the optimum", which is *unsound* under partitioning: one
//!   worker finishing its own slice proves nothing about the others'.
//!
//! # Why the shared bound stays sound
//!
//! All timed workers still prune against the PR-4 [`SharedBound`]: every
//! improving cost is published with a `fetch_min`, and each worker prunes
//! against the minimum of its local incumbent and the published bound.  The
//! bound only ever decreases, so pruning against a stale (larger) read is
//! sound — the pruned subtree cannot contain anything cheaper than the
//! final bound either.  That argument never depended on the workers'
//! trees being identical, so it survives partitioning unchanged; only the
//! *completion* rule had to change (see above).
//!
//! # Diversification
//!
//! Disjoint frontiers already diversify the race, and two rider roles
//! widen it further (with `N ≥ 2` workers):
//!
//! * worker 1 is **FFD-seeded**: the optimizer hands it a first-fit
//!   decreasing packing ([`PortfolioConfig::ffd_incumbent`]) as a second
//!   incumbent, so a migration-heavy but usually-feasible solution bounds
//!   the race from the start even when the "keep everything in place"
//!   incumbent is poor;
//! * the last worker (with `N ≥ 3`) is **randomized**: it orders the
//!   non-preferred values of every branching with a per-worker-seeded
//!   xorshift shuffle ([`PortfolioConfig::seed`]), the classic
//!   heavy-tail hedge;
//! * every worker keeps the Luby schedule of [`SearchConfig::restarts`],
//!   reinterpreted as **freeze-restarts**: when the failure budget fires,
//!   the worker abandons its dive, re-publishes the *root* of the current
//!   subtree as a single frozen checkpoint and jumps to the oldest
//!   checkpoint it owns.  The abandoned subtree is re-explored in full
//!   later under the next (larger) Luby budget with a rotated value
//!   ordering — the same partial-progress price a serial Luby restart
//!   pays, but scoped to one root slice instead of the whole tree.
//!
//! # Deterministic reduction mode
//!
//! Stealing makes the explored tree depend on thread timing, which is
//! incompatible with the byte-identical artifacts the bench gate and the
//! determinism suite require.  With [`PortfolioConfig::deterministic`] the
//! partition is static: each worker explores exactly its slice under a
//! fixed node budget with stealing and the shared bound disabled, and the
//! winner is the `(cost, worker id)` minimum.  The outcome is a pure
//! function of the model and the configuration, whatever the machine or
//! the scheduling.  A 1-worker portfolio short-circuits to the plain
//! [`Search`] and is bit-identical to it, statistics included.
//!
//! The duplicated race of PR 4 is kept as [`RaceStrategy::Duplicated`] so
//! benchmarks can A/B the two protocols in one binary.

use std::thread;
use std::time::Instant;

use crate::sync::{AtomicBool, AtomicU64, Ordering};

use crate::deque::{work_deque, DequeStealer, DequeWorker, Steal};
use crate::propagator::{propagate_to_fixpoint, Propagator};
use crate::search::{
    luby, MinimizeOutcome, Objective, Search, SearchConfig, SearchStats, SharedBound, Solution,
    SubtreeCheckpoint, ValueSelection,
};
use crate::store::{DomainStore, Model, VarId};
use std::sync::Arc;

/// How the workers divide the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceStrategy {
    /// Every worker races the full tree with a rotated value ordering (the
    /// PR-4 protocol).  Kept for A/B comparison; one completed worker
    /// proves global optimality here, because every tree is the whole
    /// space.
    Duplicated,
    /// Root values are partitioned across workers (disjoint frontiers);
    /// with `steal` set, idle workers steal frozen subtrees from busy
    /// ones.  Stealing is always disabled in deterministic mode.
    Partitioned {
        /// Enable work stealing between the partitions.
        steal: bool,
    },
}

impl Default for RaceStrategy {
    fn default() -> Self {
        RaceStrategy::Partitioned { steal: true }
    }
}

/// Tuning of a [`PortfolioSearch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Number of racing workers (clamped to at least 1).
    pub workers: usize,
    /// Deterministic reduction mode: static partition, no stealing, no
    /// shared bound, fixed per-worker node budgets, `(cost, worker id)`
    /// winner (see the module docs).
    pub deterministic: bool,
    /// How the workers divide the space.
    pub strategy: RaceStrategy,
    /// Optional second incumbent (a complete assignment, e.g. a first-fit
    /// decreasing packing) seeded into the FFD rider worker.
    pub ffd_incumbent: Option<Vec<u32>>,
    /// Seed of the randomized rider worker's value-ordering shuffle.
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            workers: 1,
            deterministic: false,
            strategy: RaceStrategy::default(),
            ffd_incumbent: None,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl PortfolioConfig {
    /// A timed partitioned+stealing portfolio with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        PortfolioConfig {
            workers,
            ..Default::default()
        }
    }
}

/// The diversification role a worker plays in a partitioned race.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WorkerRole {
    /// Canonical heuristics (worker 0, and every worker of a duplicated
    /// race).
    #[default]
    Canonical,
    /// Canonical heuristics with the value ordering rotated by the worker
    /// id.
    Rotated,
    /// Rotated, plus the FFD incumbent seeded as a second starting bound.
    FfdSeeded,
    /// Non-preferred values shuffled by a per-worker-seeded xorshift.
    Randomized,
}

impl WorkerRole {
    /// Short lowercase label for logs and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            WorkerRole::Canonical => "canonical",
            WorkerRole::Rotated => "rotated",
            WorkerRole::FfdSeeded => "ffd",
            WorkerRole::Randomized => "random",
        }
    }
}

/// What one worker of the race did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index (also its diversification offset).
    pub worker: usize,
    /// The worker's diversification role.
    pub role: WorkerRole,
    /// Statistics of the worker's own search.
    pub stats: SearchStats,
    /// Best cost the worker found locally, if any.
    pub best_cost: Option<i64>,
    /// Root values initially assigned to this worker (0 in a duplicated
    /// race, where every worker owns the whole root domain).
    pub root_values: usize,
    /// Subtree checkpoints this worker explored (slice + own + stolen).
    pub subtrees: u64,
    /// Checkpoints stolen from other workers' deques.
    pub steals: u64,
    /// Checkpoints this worker froze and published (donations plus
    /// freeze-restarts).
    pub donated: u64,
}

/// Statistics of one portfolio race.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Per-worker reports, in worker order.
    pub workers: Vec<WorkerReport>,
    /// Index of the winning worker (`None` when no worker found a
    /// solution).  Ties are broken by the smallest worker index.
    pub winner: Option<usize>,
    /// Workers sharing the root partition (0 for a duplicated race).
    pub partition_workers: usize,
    /// Total checkpoints stolen across the race.
    pub steals_total: u64,
    /// Total checkpoints frozen and published across the race.
    pub donated_total: u64,
    /// Wall-clock time of the whole race, in milliseconds.
    pub elapsed_ms: u64,
}

impl PortfolioStats {
    /// The winning worker's report, if any worker found a solution.
    pub fn winning_worker(&self) -> Option<&WorkerReport> {
        self.winner.map(|w| &self.workers[w])
    }
}

/// Result of a portfolio minimisation.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Best solution found by any worker.
    pub best: Option<Solution>,
    /// Cost of the best solution.
    pub best_cost: Option<i64>,
    /// Aggregate statistics: node/failure/solution/restart counts summed
    /// over the workers, `completed` when the race proved optimality (see
    /// the module docs for what that means per strategy), `incumbent_kept`
    /// from the winning worker, `elapsed_ms` the race's wall-clock time.
    pub stats: SearchStats,
    /// The race breakdown: per-worker statistics and the winner.
    pub portfolio: PortfolioStats,
}

/// The deterministic root partition of a model: the canonical branching
/// variable and one slice of its value choices per worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootPartition {
    /// The root branching variable (canonical heuristics).
    pub var: VarId,
    /// Value slices, one per worker: slice `k` holds the canonical values
    /// at positions `k, k + workers, k + 2·workers, …` — together an exact
    /// cover of the propagated root domain.
    pub slices: Vec<Vec<u32>>,
}

/// Compute the root partition a partitioned portfolio would use: propagate
/// the root store once, pick the branching variable with the configured
/// heuristics, order its values canonically and deal them round-robin.
///
/// Returns `None` when the root is infeasible or already fully assigned
/// (degenerate races with no tree to partition).
pub fn partition_root(
    model: &Model,
    config: &SearchConfig,
    workers: usize,
) -> Option<RootPartition> {
    let mut store = model.root_store();
    if propagate_to_fixpoint(model.propagators(), &mut store).is_err() || store.all_fixed() {
        return None;
    }
    Some(plan_partition(config, &store, workers.max(1)))
}

fn plan_partition(config: &SearchConfig, root: &DomainStore, workers: usize) -> RootPartition {
    let var = Search::select_variable(&config.variable_selection, root);
    let values =
        Search::order_values_diversified(&config.value_selection, var, root, config.diversify);
    let mut slices = vec![Vec::new(); workers];
    for (i, value) in values.into_iter().enumerate() {
        slices[i % workers].push(value);
    }
    RootPartition { var, slices }
}

/// A tiny deterministic xorshift64* generator for the randomized rider —
/// the solver crate stays dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Fisher–Yates shuffle.
    fn shuffle(&mut self, values: &mut [u32]) {
        for i in (1..values.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            values.swap(i, j);
        }
    }
}

/// The in-flight checkpoint counter of a partitioned race: the number of
/// subtrees published (seeded, donated or frozen) but not yet fully
/// explored.  The race has *provably* exhausted the search space exactly
/// when this reaches zero — every published subtree was explored, and any
/// subtree a worker was still exploring keeps the count positive through
/// its own entry.
///
/// # Protocol (checked by `tests/model_check.rs`)
///
/// * [`PendingCounter::publish`] increments **before** the checkpoint is
///   pushed, so no thief can explore-and-complete a checkpoint before it is
///   counted — the count conservatively over-approximates, never
///   under-approximates, the in-flight work;
/// * [`PendingCounter::retract`] undoes a publish whose push failed (the
///   checkpoint never became visible, so nobody else can have counted on
///   it);
/// * [`PendingCounter::complete`] decrements *after* the subtree is fully
///   explored, with `AcqRel` so the completed exploration happens-before
///   whoever observes the drain;
/// * [`PendingCounter::drained`] is the exit check, `Acquire` to pair with
///   `complete`.
#[derive(Debug, Default)]
pub struct PendingCounter(AtomicU64);

impl PendingCounter {
    /// A counter with nothing in flight.
    pub fn new() -> Self {
        PendingCounter(AtomicU64::new(0))
    }

    /// Count a checkpoint about to be pushed (call *before* the push).
    pub fn publish(&self) {
        // relaxed: the increment must only be atomic; the checkpoint it
        // counts is published by the deque's Release slot store, and the
        // exit edge is carried by `complete`/`drained`, not by this add.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Undo a [`PendingCounter::publish`] whose push failed.
    pub fn retract(&self) {
        // relaxed: pairs with the failed publish — the checkpoint was never
        // visible to anyone, so there is nothing to order against.
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count a subtree as fully explored (call *after* exploring it).
    pub fn complete(&self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }

    /// True when every published checkpoint has been explored: the
    /// partitioned race may terminate.
    pub fn drained(&self) -> bool {
        self.0.load(Ordering::Acquire) == 0
    }

    /// Checkpoints still in flight (advisory, for reporting).
    pub fn outstanding(&self) -> u64 {
        // relaxed: read for statistics after the workers joined (the join
        // is the synchronization); concurrent readers get a snapshot.
        self.0.load(Ordering::Relaxed)
    }
}

/// A parallel portfolio of cooperating branch & bound workers over one
/// [`Model`] (see the module docs for the protocol).
pub struct PortfolioSearch<'m> {
    model: &'m Model,
    base: SearchConfig,
    config: PortfolioConfig,
}

/// Donate untried siblings when the own deque gets this shallow.
const DONATE_LOW_WATER: usize = 2;
/// Never donate subtrees deeper than this (bounds the thief's replay cost);
/// freeze-restarts are exempt, they mostly come back to the same worker.
const MAX_DONATE_DEPTH: usize = 96;
/// Ring capacity of each worker deque.
const RING_CAPACITY: usize = 512;
/// Lifetime checkpoint budget of each worker deque.
const ARENA_CAPACITY: usize = 8192;

/// Worker-indexed handles shared by the race.
struct SharedRace<'a> {
    model: &'a Model,
    root: &'a DomainStore,
    pending: &'a PendingCounter,
    early_stop: &'a AtomicBool,
}

/// Control flow of the partitioned worker's depth-first dive.
enum Flow {
    /// Subtree done (explored, pruned or failed): continue with siblings.
    Continue,
    /// A limit fired: unwind and stop the worker.
    Stop,
    /// The freeze budget fired: untried work was checkpointed, unwind to
    /// the task loop.
    Freeze,
}

struct Worker<'a, O: Objective> {
    id: usize,
    role: WorkerRole,
    config: &'a SearchConfig,
    objective: &'a O,
    race: &'a SharedRace<'a>,
    propagators: &'a [Arc<dyn Propagator>],
    own: DequeWorker<SubtreeCheckpoint>,
    own_top: DequeStealer<SubtreeCheckpoint>,
    victims: Vec<DequeStealer<SubtreeCheckpoint>>,
    steal_enabled: bool,
    deadline: Option<Instant>,
    rng: Option<XorShift>,
    /// Current rotation of the value ordering (serial `run` equivalent).
    run: u64,
    /// Failure count at which the next freeze-restart fires.
    failure_budget: Option<u64>,
    /// Root checkpoint of the subtree currently being explored — what a
    /// freeze-restart re-publishes.
    subtree_root: Option<SubtreeCheckpoint>,
    freeze_fired: bool,
    /// Take the oldest own checkpoint next (set after a freeze-restart).
    jump: bool,
    next_victim: usize,
    stopped: bool,
    stats: SearchStats,
    best: Option<Solution>,
    best_cost: Option<i64>,
    subtrees: u64,
    steals: u64,
    donated: u64,
}

impl<'a, O: Objective> Worker<'a, O> {
    fn limits_reached(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if let Some(shared) = &self.config.shared {
            if shared.is_cancelled() {
                self.stopped = true;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.stopped = true;
                return true;
            }
        }
        if let Some(limit) = self.config.node_limit {
            if self.stats.nodes >= limit {
                self.stopped = true;
                return true;
            }
        }
        false
    }

    fn recompute_failure_budget(&mut self) {
        self.failure_budget = self
            .config
            .restarts
            .as_ref()
            .map(|p| self.stats.failures + p.scale * luby(self.run + 1));
    }

    /// Publish a checkpoint to the own deque, bumping `pending` first so no
    /// thief can complete it before it is counted.  Returns false (and
    /// restores `pending`) when the deque is full.
    fn publish(&mut self, checkpoint: SubtreeCheckpoint) -> bool {
        self.race.pending.publish();
        match self.own.push(checkpoint) {
            Ok(()) => {
                self.donated += 1;
                true
            }
            Err(_) => {
                self.race.pending.retract();
                false
            }
        }
    }

    /// Value ordering of this worker at the current rotation.
    fn order_values(&mut self, var: VarId, store: &DomainStore) -> Vec<u32> {
        let mut values =
            Search::order_values_diversified(&self.config.value_selection, var, store, self.run);
        if let Some(rng) = &mut self.rng {
            // Keep a preferred value pinned first, shuffle the rest.
            let pinned = match &self.config.value_selection {
                ValueSelection::Preferred(preferred) => matches!(
                    (preferred.get(var.0), values.first()),
                    (Some(Some(p)), Some(first)) if p == first
                ),
                ValueSelection::MinValue => false,
            } as usize;
            rng.shuffle(&mut values[pinned..]);
        }
        values
    }

    fn prune_bound(&self) -> Option<i64> {
        let shared_best = self
            .config
            .shared
            .as_ref()
            .and_then(|shared| shared.best_cost());
        match (self.best_cost, shared_best) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (bound, None) | (None, bound) => bound,
        }
    }

    /// One search node: `store` carries the last decision of `trail`, not
    /// yet propagated (mirrors the serial `dfs_bnb` accounting).
    fn bnb(&mut self, mut store: DomainStore, trail: &mut Vec<(VarId, u32)>) -> Flow {
        if self.limits_reached() {
            return Flow::Stop;
        }
        if let Some(budget) = self.failure_budget {
            if self.stats.failures >= budget && !trail.is_empty() {
                // Freeze-restart: abandon the dive and re-publish the
                // *root* of the current subtree as one checkpoint.  The
                // subtree is re-explored in full later, under the next
                // (larger) Luby budget and a rotated value ordering, so
                // nothing is lost — only the partial progress of this run,
                // exactly the price a serial Luby restart pays.  Publishing
                // per-sibling checkpoints instead would flood the ring on a
                // deep unwind and silently cancel restarts.  A full deque
                // still cancels restarts for good — correctness never
                // depends on freezing.
                let root = self
                    .subtree_root
                    .clone()
                    .expect("bnb only runs inside run_subtree");
                if self.publish(root) {
                    self.freeze_fired = true;
                    return Flow::Freeze;
                }
                self.failure_budget = None;
            }
        }
        self.stats.nodes += 1;
        if propagate_to_fixpoint(self.propagators, &mut store).is_err() {
            self.stats.failures += 1;
            return Flow::Continue;
        }
        if let Some(current_best) = self.prune_bound() {
            if self.objective.lower_bound(&store) >= current_best {
                self.stats.failures += 1;
                return Flow::Continue;
            }
        }
        if store.all_fixed() {
            let cost = self.objective.evaluate(&store);
            let improves = self.best_cost.map(|b| cost < b).unwrap_or(true);
            if improves {
                self.best = Some(Solution::from_store(&store));
                self.best_cost = Some(cost);
                self.stats.solutions += 1;
                self.stats.incumbent_kept = false;
                if let Some(shared) = &self.config.shared {
                    shared.publish(cost);
                }
            }
            return Flow::Continue;
        }
        let var = Search::select_variable(&self.config.variable_selection, &store);
        let values = self.order_values(var, &store);

        // Donation: when the own deque runs low, publish every untried
        // sibling and dive only into the first value.
        let mut inline = values;
        if self.steal_enabled
            && inline.len() > 1
            && trail.len() < MAX_DONATE_DEPTH
            && self.own.len() < DONATE_LOW_WATER
        {
            let mut kept = vec![inline[0]];
            // Push in reverse so thieves (and the own pop) see the
            // canonical order.
            let mut fallback = Vec::new();
            for &value in inline[1..].iter().rev() {
                trail.push((var, value));
                let checkpoint = SubtreeCheckpoint {
                    trail: trail.clone(),
                };
                trail.pop();
                if !self.publish(checkpoint) {
                    fallback.push(value);
                }
            }
            fallback.reverse();
            kept.extend(fallback);
            inline = kept;
        }

        let mut index = 0;
        while index < inline.len() {
            let value = inline[index];
            index += 1;
            let mut child = store.clone();
            if child.assign(var, value).is_err() {
                self.stats.failures += 1;
                continue;
            }
            trail.push((var, value));
            let flow = self.bnb(child, trail);
            trail.pop();
            match flow {
                Flow::Continue => {}
                Flow::Stop => return Flow::Stop,
                // The subtree root was re-published; the untried siblings
                // are part of it and come back with the re-exploration.
                Flow::Freeze => return Flow::Freeze,
            }
        }
        Flow::Continue
    }

    /// Explore one checkpoint: replay its trail against the shared root
    /// and dive.  The final decision of the trail is the subtree's root
    /// node; the prefix is reconstruction, not search, and counts no nodes.
    fn run_subtree(&mut self, checkpoint: SubtreeCheckpoint) {
        self.subtrees += 1;
        self.subtree_root = Some(checkpoint.clone());
        let (last, prefix) = checkpoint
            .trail
            .split_last()
            .expect("checkpoints always carry at least the root decision");
        let prefix = SubtreeCheckpoint {
            trail: prefix.to_vec(),
        };
        let Ok(mut store) = prefix.replay(self.race.root, self.propagators) else {
            // Unreachable by determinism (the prefix was consistent when
            // frozen); count it as a failure rather than crash the race.
            self.stats.failures += 1;
            return;
        };
        if store.assign(last.0, last.1).is_err() {
            self.stats.failures += 1;
            return;
        }
        let mut trail = checkpoint.trail.clone();
        let _ = self.bnb(store, &mut trail);
    }

    /// Take the next checkpoint: own bottom first (depth-first), then the
    /// oldest own checkpoint after a freeze-restart, then steal; spin while
    /// work is still in flight elsewhere.
    fn acquire(&mut self) -> Option<SubtreeCheckpoint> {
        loop {
            if self.limits_reached() {
                return None;
            }
            if self.jump {
                self.jump = false;
                if let Steal::Success(checkpoint) = self.own_top.steal() {
                    return Some(checkpoint);
                }
            }
            if let Some(checkpoint) = self.own.pop() {
                return Some(checkpoint);
            }
            if !self.steal_enabled {
                return None;
            }
            let mut saw_retry = false;
            for offset in 0..self.victims.len() {
                let victim = (self.next_victim + offset) % self.victims.len();
                match self.victims[victim].steal() {
                    Steal::Success(checkpoint) => {
                        self.next_victim = victim;
                        self.steals += 1;
                        return Some(checkpoint);
                    }
                    Steal::Retry => saw_retry = true,
                    Steal::Empty => {}
                }
            }
            if !saw_retry && self.race.pending.drained() {
                return None;
            }
            thread::yield_now();
        }
    }

    fn run(mut self) -> WorkerOutcome {
        let start = Instant::now();
        self.recompute_failure_budget();
        while let Some(checkpoint) = self.acquire() {
            self.run_subtree(checkpoint);
            self.race.pending.complete();
            if self.freeze_fired {
                self.freeze_fired = false;
                self.stats.restarts += 1;
                self.run += 1;
                self.recompute_failure_budget();
                self.jump = true;
            }
        }
        if self.stopped {
            // relaxed: a pure flag, read only after the workers joined.
            self.race.early_stop.store(true, Ordering::Relaxed);
        }
        self.stats.completed = !self.stopped;
        self.stats.elapsed_ms = start.elapsed().as_millis() as u64;
        self.stats.final_run = self.run;
        WorkerOutcome {
            report: WorkerReport {
                worker: self.id,
                role: self.role,
                stats: self.stats,
                best_cost: self.best_cost,
                root_values: 0, // filled by the reducer
                subtrees: self.subtrees,
                steals: self.steals,
                donated: self.donated,
            },
            best: self.best,
        }
    }
}

/// What one partitioned worker hands back to the reducer.
struct WorkerOutcome {
    report: WorkerReport,
    best: Option<Solution>,
}

impl<'m> PortfolioSearch<'m> {
    /// Build a portfolio over `model`.  `base` carries the heuristics and
    /// limits every worker shares (timeout, node budget, incumbent,
    /// restarts); the portfolio configuration picks the strategy and the
    /// rider seeds.
    pub fn new(model: &'m Model, base: SearchConfig, config: PortfolioConfig) -> Self {
        PortfolioSearch {
            model,
            base,
            config,
        }
    }

    /// Race the workers and reduce: the best solution found by any worker,
    /// with ties broken by the smallest worker index.
    pub fn minimize<O: Objective + Sync>(&self, objective: &O) -> PortfolioOutcome {
        let workers = self.config.workers.max(1);
        if workers == 1 {
            return self.run_serial(objective);
        }
        match self.config.strategy {
            RaceStrategy::Duplicated => self.race_duplicated(objective, workers),
            RaceStrategy::Partitioned { steal } => {
                let steal = steal && !self.config.deterministic;
                self.race_partitioned(objective, workers, steal)
            }
        }
    }

    /// 1-worker portfolio: exactly the plain search, bit-identical.
    fn run_serial<O: Objective + Sync>(&self, objective: &O) -> PortfolioOutcome {
        let start = Instant::now();
        let outcome = Search::new(self.model, self.base.clone()).minimize(objective);
        let winner = outcome.best_cost.is_some().then_some(0);
        let report = WorkerReport {
            worker: 0,
            role: WorkerRole::Canonical,
            stats: outcome.stats.clone(),
            best_cost: outcome.best_cost,
            root_values: 0,
            subtrees: 0,
            steals: 0,
            donated: 0,
        };
        PortfolioOutcome {
            best: outcome.best,
            best_cost: outcome.best_cost,
            stats: outcome.stats,
            portfolio: PortfolioStats {
                workers: vec![report],
                winner,
                partition_workers: match self.config.strategy {
                    RaceStrategy::Duplicated => 0,
                    RaceStrategy::Partitioned { .. } => 1,
                },
                steals_total: 0,
                donated_total: 0,
                elapsed_ms: start.elapsed().as_millis() as u64,
            },
        }
    }

    /// The PR-4 protocol: race duplicated, diversified copies of the serial
    /// search.  Any completed worker proves global optimality (its tree is
    /// the full space) and cancels the rest.
    fn race_duplicated<O: Objective + Sync>(
        &self,
        objective: &O,
        workers: usize,
    ) -> PortfolioOutcome {
        let start = Instant::now();
        let shared = (!self.config.deterministic).then(SharedBound::new);

        let outcomes: Vec<MinimizeOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let mut config = self.base.clone();
                    config.diversify = self.base.diversify + worker as u64;
                    config.shared = shared.clone();
                    let model = self.model;
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let outcome = Search::new(model, config).minimize(objective);
                        if outcome.stats.completed {
                            if let Some(shared) = &shared {
                                shared.cancel();
                            }
                        }
                        outcome
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("portfolio worker panicked"))
                .collect()
        });

        let winner = outcomes
            .iter()
            .enumerate()
            .filter_map(|(worker, outcome)| outcome.best_cost.map(|cost| (cost, worker)))
            .min()
            .map(|(_, worker)| worker);

        let mut stats = SearchStats {
            elapsed_ms: start.elapsed().as_millis() as u64,
            ..Default::default()
        };
        let mut reports = Vec::with_capacity(outcomes.len());
        for (worker, outcome) in outcomes.iter().enumerate() {
            stats.nodes += outcome.stats.nodes;
            stats.failures += outcome.stats.failures;
            stats.solutions += outcome.stats.solutions;
            stats.restarts += outcome.stats.restarts;
            stats.completed |= outcome.stats.completed;
            reports.push(WorkerReport {
                worker,
                role: if worker == 0 {
                    WorkerRole::Canonical
                } else {
                    WorkerRole::Rotated
                },
                stats: outcome.stats.clone(),
                best_cost: outcome.best_cost,
                root_values: 0,
                subtrees: 0,
                steals: 0,
                donated: 0,
            });
        }
        if let Some(winner) = winner {
            stats.incumbent_kept = outcomes[winner].stats.incumbent_kept;
            stats.final_run = outcomes[winner].stats.final_run;
        }

        let (best, best_cost) = match winner {
            Some(winner) => (outcomes[winner].best.clone(), outcomes[winner].best_cost),
            None => (None, None),
        };
        PortfolioOutcome {
            best,
            best_cost,
            stats,
            portfolio: PortfolioStats {
                workers: reports,
                winner,
                partition_workers: 0,
                steals_total: 0,
                donated_total: 0,
                elapsed_ms: start.elapsed().as_millis() as u64,
            },
        }
    }

    /// The partitioned race (see the module docs).
    fn race_partitioned<O: Objective + Sync>(
        &self,
        objective: &O,
        workers: usize,
        steal: bool,
    ) -> PortfolioOutcome {
        let start = Instant::now();
        let shared = (!self.config.deterministic).then(SharedBound::new);

        // Validate the incumbents once: propagation is deterministic, so
        // doing it N times in the workers would only burn wall-clock.
        let probe = Search::new(self.model, self.base.clone());
        let seed = self
            .base
            .incumbent
            .as_ref()
            .and_then(|values| probe.validate_incumbent(values))
            .map(|store| (Solution::from_store(&store), objective.evaluate(&store)));
        let ffd = self
            .config
            .ffd_incumbent
            .as_ref()
            .and_then(|values| probe.validate_incumbent(values))
            .map(|store| (Solution::from_store(&store), objective.evaluate(&store)));
        if let Some(shared) = &shared {
            if let Some((_, cost)) = &seed {
                shared.publish(*cost);
            }
            if let Some((_, cost)) = &ffd {
                shared.publish(*cost);
            }
        }

        // Propagate the root once; handle the degenerate races inline.
        let mut root = self.model.root_store();
        let mut prep_stats = SearchStats {
            nodes: 1,
            ..Default::default()
        };
        if propagate_to_fixpoint(self.model.propagators(), &mut root).is_err() {
            prep_stats.failures = 1;
            return self.degenerate_outcome(start, workers, seed, prep_stats);
        }
        if root.all_fixed() {
            let cost = objective.evaluate(&root);
            let improves = seed.as_ref().map(|(_, s)| cost < *s).unwrap_or(true);
            let best = if improves {
                prep_stats.solutions = 1;
                Some((Solution::from_store(&root), cost))
            } else {
                prep_stats.incumbent_kept = true;
                seed
            };
            return self.degenerate_outcome(start, workers, best, prep_stats);
        }

        let partition = plan_partition(&self.base, &root, workers);
        let root_var = partition.var;

        // One deque per worker, seeded with its slice (reversed, so the
        // owner pops the canonical order; thieves and the freeze-jump
        // steal from the opposite end, the furthest untouched value).
        let pending = PendingCounter::new();
        let early_stop = AtomicBool::new(false);
        let mut owners = Vec::with_capacity(workers);
        let mut stealers = Vec::with_capacity(workers);
        for slice in &partition.slices {
            let (owner, stealer) = work_deque::<SubtreeCheckpoint>(
                RING_CAPACITY.max(slice.len() + 1),
                ARENA_CAPACITY.max(slice.len() + 1),
            );
            for &value in slice.iter().rev() {
                pending.publish();
                owner
                    .push(SubtreeCheckpoint {
                        trail: vec![(root_var, value)],
                    })
                    .unwrap_or_else(|_| unreachable!("seed slice fits the ring"));
            }
            owners.push(owner);
            stealers.push(stealer);
        }

        let race = SharedRace {
            model: self.model,
            root: &root,
            pending: &pending,
            early_stop: &early_stop,
        };
        let deadline = self.base.timeout.map(|t| start + t);

        let mut outcomes: Vec<WorkerOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = owners
                .into_iter()
                .enumerate()
                .map(|(id, own)| {
                    let role = self.role_of(id, workers);
                    let mut config = self.base.clone();
                    config.shared = shared.clone();
                    let own_top = stealers[id].clone();
                    let victims: Vec<_> = (0..workers)
                        .filter(|&v| v != id)
                        .map(|v| stealers[v].clone())
                        .collect();
                    let race = &race;
                    let seed = &seed;
                    let ffd = &ffd;
                    scope.spawn(move || {
                        let mut worker = Worker {
                            id,
                            role,
                            config: &config,
                            objective,
                            race,
                            propagators: race.model.propagators(),
                            own,
                            own_top,
                            victims,
                            steal_enabled: steal,
                            deadline,
                            rng: matches!(role, WorkerRole::Randomized)
                                .then(|| XorShift::new(self.config.seed ^ (id as u64) << 32)),
                            // Warm-started callers offset every worker by the
                            // base diversify so successive solves continue the
                            // restart schedule; with the default of 0 this is
                            // the historical per-worker rotation.
                            run: self.base.diversify
                                + match role {
                                    WorkerRole::Randomized => 0,
                                    _ => id as u64,
                                },
                            failure_budget: None,
                            subtree_root: None,
                            freeze_fired: false,
                            jump: false,
                            next_victim: (id + 1) % workers,
                            stopped: false,
                            stats: SearchStats::default(),
                            best: None,
                            best_cost: None,
                            subtrees: 0,
                            steals: 0,
                            donated: 0,
                        };
                        // Seed the incumbents: every worker starts from the
                        // caller's incumbent; the FFD rider also considers
                        // the FFD packing.
                        if let Some((solution, cost)) = seed {
                            worker.best = Some(solution.clone());
                            worker.best_cost = Some(*cost);
                            worker.stats.incumbent_kept = true;
                        }
                        if matches!(role, WorkerRole::FfdSeeded) {
                            if let Some((solution, cost)) = ffd {
                                let improves = worker.best_cost.map(|b| *cost < b).unwrap_or(true);
                                if improves {
                                    worker.best = Some(solution.clone());
                                    worker.best_cost = Some(*cost);
                                    worker.stats.incumbent_kept = false;
                                    worker.stats.solutions += 1;
                                }
                            }
                        }
                        worker.run()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("portfolio worker panicked"))
                .collect()
        });

        // The race is globally complete only when every checkpoint was
        // fully explored and nobody stopped early.
        // relaxed: the scope join above synchronized with every worker.
        let exhausted = !early_stop.load(Ordering::Relaxed) && pending.outstanding() == 0;

        for (outcome, slice) in outcomes.iter_mut().zip(&partition.slices) {
            outcome.report.root_values = slice.len();
        }
        // The root preparation work (one propagation) is accounted to
        // worker 0 so node totals stay comparable with the serial search.
        outcomes[0].report.stats.nodes += prep_stats.nodes;

        let winner = outcomes
            .iter()
            .filter_map(|o| o.report.best_cost.map(|cost| (cost, o.report.worker)))
            .min()
            .map(|(_, worker)| worker);
        let (best, best_cost) = match winner {
            Some(winner) => (
                outcomes[winner].best.clone(),
                outcomes[winner].report.best_cost,
            ),
            None => (None, None),
        };
        let reports = outcomes.into_iter().map(|o| o.report).collect();
        self.reduce_partitioned(start, workers, reports, exhausted, best, best_cost, winner)
    }

    fn role_of(&self, worker: usize, workers: usize) -> WorkerRole {
        if worker == 0 {
            WorkerRole::Canonical
        } else if worker == workers - 1 && workers >= 3 {
            WorkerRole::Randomized
        } else if worker == 1 && self.config.ffd_incumbent.is_some() {
            WorkerRole::FfdSeeded
        } else {
            WorkerRole::Rotated
        }
    }

    /// Outcome of a race that never spawned workers (infeasible or fully
    /// fixed root): worker 0 carries the preparation statistics and, when
    /// a solution exists, the result.
    fn degenerate_outcome(
        &self,
        start: Instant,
        workers: usize,
        best: Option<(Solution, i64)>,
        prep_stats: SearchStats,
    ) -> PortfolioOutcome {
        let mut reports: Vec<WorkerReport> = (0..workers)
            .map(|worker| WorkerReport {
                worker,
                role: self.role_of(worker, workers),
                stats: SearchStats {
                    completed: true,
                    ..Default::default()
                },
                ..Default::default()
            })
            .collect();
        reports[0].stats = SearchStats {
            completed: true,
            ..prep_stats
        };
        let (best, best_cost) = match best {
            Some((solution, cost)) => (Some(solution), Some(cost)),
            None => (None, None),
        };
        let winner = best_cost.map(|_| 0);
        reports[0].best_cost = best_cost;
        self.reduce_partitioned(start, workers, reports, true, best, best_cost, winner)
    }

    #[allow(clippy::too_many_arguments)]
    fn reduce_partitioned(
        &self,
        start: Instant,
        workers: usize,
        reports: Vec<WorkerReport>,
        exhausted: bool,
        best: Option<Solution>,
        best_cost: Option<i64>,
        winner: Option<usize>,
    ) -> PortfolioOutcome {
        let mut stats = SearchStats {
            elapsed_ms: start.elapsed().as_millis() as u64,
            completed: exhausted,
            ..Default::default()
        };
        let mut steals_total = 0;
        let mut donated_total = 0;
        for report in &reports {
            stats.nodes += report.stats.nodes;
            stats.failures += report.stats.failures;
            stats.solutions += report.stats.solutions;
            stats.restarts += report.stats.restarts;
            steals_total += report.steals;
            donated_total += report.donated;
        }
        if let Some(winner) = winner {
            stats.incumbent_kept = reports[winner].stats.incumbent_kept;
            stats.final_run = reports[winner].stats.final_run;
        }
        PortfolioOutcome {
            best,
            best_cost,
            stats,
            portfolio: PortfolioStats {
                workers: reports,
                winner,
                partition_workers: workers,
                steals_total,
                donated_total,
                elapsed_ms: start.elapsed().as_millis() as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{AllDifferent, BinPacking};
    use crate::search::{ClosureObjective, RestartPolicy};
    use crate::DomainStore;

    /// A tight packing with a non-trivial optimum (the Luby-restart test
    /// model of `search.rs`): 6 items of size 3 over 3 bins of capacity 6.
    fn packing_model() -> (Model, Vec<crate::VarId>) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.new_var(0, 2)).collect();
        m.post(BinPacking::new(vars.clone(), vec![3; 6], vec![6; 3]));
        (m, vars)
    }

    fn packing_objective(vars: Vec<crate::VarId>) -> impl Objective + Sync {
        let weight = |i: usize, v: u32| (6 - i as i64) * (2 - v as i64);
        ClosureObjective::new(
            {
                let vars = vars.clone();
                move |store: &DomainStore| {
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| weight(i, store.value(v)))
                        .sum()
                }
            },
            {
                let vars = vars.clone();
                move |store: &DomainStore| {
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            store
                                .domain(v)
                                .iter()
                                .map(|value| weight(i, value))
                                .min()
                                .unwrap_or(0)
                        })
                        .sum()
                }
            },
        )
    }

    #[test]
    fn partitioned_portfolio_finds_the_proven_optimum() {
        let (m, vars) = packing_model();
        let objective = packing_objective(vars);
        let config = SearchConfig {
            restarts: Some(RestartPolicy::luby(1)),
            ..Default::default()
        };
        let outcome =
            PortfolioSearch::new(&m, config, PortfolioConfig::with_workers(4)).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(13));
        assert!(outcome.stats.completed, "exhaustion proves optimality");
        assert_eq!(outcome.portfolio.workers.len(), 4);
        assert_eq!(outcome.portfolio.partition_workers, 4);
        let winner = outcome.portfolio.winning_worker().expect("has a winner");
        assert_eq!(winner.best_cost, Some(13));
        let covered: usize = outcome
            .portfolio
            .workers
            .iter()
            .map(|w| w.root_values)
            .sum();
        assert_eq!(covered, 3, "the root domain is fully dealt out");
    }

    #[test]
    fn duplicated_race_still_finds_the_proven_optimum() {
        let (m, vars) = packing_model();
        let objective = packing_objective(vars);
        let config = SearchConfig {
            restarts: Some(RestartPolicy::luby(1)),
            ..Default::default()
        };
        let portfolio = PortfolioConfig {
            workers: 4,
            strategy: RaceStrategy::Duplicated,
            ..Default::default()
        };
        let outcome = PortfolioSearch::new(&m, config, portfolio).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(13));
        assert!(outcome.stats.completed);
        assert_eq!(outcome.portfolio.partition_workers, 0);
        assert_eq!(outcome.portfolio.steals_total, 0);
    }

    #[test]
    fn deterministic_reduction_is_reproducible() {
        let (m, vars) = packing_model();
        let objective = packing_objective(vars);
        let run = || {
            let config = SearchConfig {
                node_limit: Some(40),
                restarts: Some(RestartPolicy::luby(1)),
                ..Default::default()
            };
            let portfolio = PortfolioConfig {
                workers: 3,
                deterministic: true,
                ..Default::default()
            };
            PortfolioSearch::new(&m, config, portfolio).minimize(&objective)
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.portfolio.winner, b.portfolio.winner);
        assert_eq!(a.portfolio.steals_total, 0, "stealing is off in det mode");
        for (wa, wb) in a.portfolio.workers.iter().zip(&b.portfolio.workers) {
            assert_eq!(wa.stats.nodes, wb.stats.nodes);
            assert_eq!(wa.stats.failures, wb.stats.failures);
            assert_eq!(wa.best_cost, wb.best_cost);
            assert_eq!(wa.donated, wb.donated);
            assert_eq!(wa.subtrees, wb.subtrees);
        }
    }

    #[test]
    fn unsatisfiable_models_yield_no_winner() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..3).map(|_| m.new_var(0, 1)).collect();
        m.post(AllDifferent::new(vars.clone()));
        let objective = ClosureObjective::new(|_| 0, |_| 0);
        let outcome = PortfolioSearch::new(
            &m,
            SearchConfig::default(),
            PortfolioConfig::with_workers(2),
        )
        .minimize(&objective);
        assert!(outcome.best.is_none());
        assert_eq!(outcome.portfolio.winner, None);
        assert!(outcome.stats.completed, "infeasibility is proven");
    }

    #[test]
    fn exhaustion_terminates_even_with_many_idle_workers() {
        // More workers than root values: the extra workers spin on steals
        // until the pending counter drains, then every worker exits.
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let objective =
            ClosureObjective::new(move |store: &DomainStore| store.value(x) as i64, |_| 0);
        let outcome = PortfolioSearch::new(
            &m,
            SearchConfig::default(),
            PortfolioConfig::with_workers(8),
        )
        .minimize(&objective);
        assert_eq!(outcome.best_cost, Some(0));
        assert!(outcome.stats.completed);
    }

    #[test]
    fn partition_root_is_an_exact_cover() {
        let (m, _) = packing_model();
        let partition = partition_root(&m, &SearchConfig::default(), 4).expect("partitionable");
        let mut all: Vec<u32> = partition.slices.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "no value lost, none duplicated");
        assert_eq!(partition.slices.len(), 4);
    }

    #[test]
    fn ffd_incumbent_bounds_the_race_from_the_start() {
        // Zero search budget: nothing is explored, so the FFD seed is the
        // only way the race can know this packing.
        let (m, vars) = packing_model();
        let objective = packing_objective(vars);
        let config = SearchConfig {
            node_limit: Some(0),
            ..Default::default()
        };
        let portfolio = PortfolioConfig {
            workers: 4,
            deterministic: true,
            // 0,0 -> bin 2; 1,1 -> bin 1; 2,2 -> bin 0: the known optimum.
            ffd_incumbent: Some(vec![2, 2, 1, 1, 0, 0]),
            ..Default::default()
        };
        let outcome = PortfolioSearch::new(&m, config, portfolio).minimize(&objective);
        assert_eq!(outcome.best_cost, Some(13));
        let ffd_worker = &outcome.portfolio.workers[1];
        assert_eq!(ffd_worker.role, WorkerRole::FfdSeeded);
        assert_eq!(ffd_worker.best_cost, Some(13));
        assert!(!outcome.stats.completed, "a zero budget proves nothing");
    }

    #[test]
    fn partitioned_race_matches_the_serial_optimum_with_stealing() {
        let (m, vars) = packing_model();
        let objective = packing_objective(vars);
        let serial = Search::new(&m, SearchConfig::default()).minimize(&objective);
        for workers in [2usize, 3, 5] {
            let outcome = PortfolioSearch::new(
                &m,
                SearchConfig::default(),
                PortfolioConfig::with_workers(workers),
            )
            .minimize(&objective);
            assert_eq!(outcome.best_cost, serial.best_cost, "{workers} workers");
            assert!(outcome.stats.completed);
        }
    }
}
