//! A lock-free Chase–Lev work-stealing deque for frozen search subtrees.
//!
//! The partitioned portfolio (see [`crate::portfolio`]) gives every worker
//! one of these deques.  The **owner** pushes and pops frozen frontier
//! subtrees on the *bottom* (LIFO, so its own traversal stays depth-first);
//! idle **stealers** take from the *top* (FIFO, so they steal the oldest —
//! shallowest, largest — subtree) with a single compare-and-swap, exactly
//! the protocol of Chase & Lev, "Dynamic circular work-stealing deque"
//! (SPAA 2005).
//!
//! # A Chase–Lev deque without `unsafe`
//!
//! The classic implementation stores the payloads themselves in the ring
//! buffer, which forces racy reads of possibly-overwritten slots and
//! therefore `unsafe` code.  This workspace denies `unsafe`, so the ring
//! here stores only **arena indices** (plain atomic integers — a stale read
//! is just a stale integer, never undefined behaviour), and the payloads
//! live in a fixed write-once arena of [`OnceLock`] cells:
//!
//! * the owner claims the next arena cell, writes the task into it
//!   (`OnceLock::set`, exactly once), and only then publishes the cell
//!   index into the ring with a `Release` store;
//! * a stealer that wins the `top` CAS reads the index with `Acquire` and
//!   clones the task out of the arena — the `Release`/`Acquire` pair on the
//!   ring slot makes the arena write visible;
//! * ABA on the ring slot is impossible to *observe*: the owner can only
//!   overwrite slot `t % capacity` after `bottom` has advanced past
//!   `t + capacity`, which (because `bottom - top` never exceeds the
//!   capacity) implies `top` moved past `t` first — and then the stealer's
//!   CAS on `top` fails and the stale index is discarded.
//!
//! The arena bounds the number of pushes over the deque's lifetime; a full
//! arena (or a full ring) makes [`DequeWorker::push`] return the task to
//! the caller, which simply keeps exploring the subtree inline instead of
//! donating it.  Correctness never depends on a push succeeding.
//!
//! # Verification
//!
//! Three layers check the protocol (see `CONCURRENCY.md`):
//!
//! * seeded multi-thread stress tests (`tests/deque_stress.rs`) hammer the
//!   exactly-once invariant across real schedules;
//! * the in-tree model checker (`tests/model_check.rs`, built with
//!   `RUSTFLAGS="--cfg cwcs_check"`) explores small configurations under a
//!   weak-memory model, where the `SeqCst` fence/CAS sites below are
//!   load-bearing — the `cwcs_mutate_take_fence` and `cwcs_mutate_steal_cas`
//!   cfgs deliberately weaken them so the suite can prove it would notice;
//! * CI runs the stress suite under Miri and ThreadSanitizer nightly.
//!
//! All atomics come from [`crate::sync`], never `std::sync::atomic`
//! directly, so the model checker can instrument them (`cwcs-lint`
//! enforces this).  `top` and `bottom` are cache-line padded: stealers
//! hammer `top` with CAS traffic and the owner rewrites `bottom` on every
//! pop — on a shared line each would steal the other's line in exclusive
//! state, roughly doubling the coherence traffic of the hot paths.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::{Arc, OnceLock};

use crate::sync::{fence, AtomicI64, AtomicUsize, CachePadded, Ordering};

/// Result of a [`DequeStealer::steal`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another stealer; retrying may succeed.
    Retry,
    /// Stole the oldest task.
    Success(T),
}

struct Inner<T> {
    /// Next slot stealers take from (grows monotonically).  Padded to its
    /// own cache line: stealer CAS traffic must not invalidate `bottom`.
    top: CachePadded<AtomicI64>,
    /// Next slot the owner pushes to (owner-written; stealers read it).
    /// Padded for the same reason, in the other direction.
    bottom: CachePadded<AtomicI64>,
    /// Ring of arena indices (`-1` = never written, for debuggability).
    ring: Vec<AtomicI64>,
    /// Write-once task cells, claimed in `next_cell` order by the owner.
    arena: Vec<OnceLock<T>>,
    /// Next free arena cell.
    next_cell: AtomicUsize,
}

impl<T> Inner<T> {
    fn slot(&self, index: i64) -> &AtomicI64 {
        &self.ring[index as usize % self.ring.len()]
    }
}

/// Owner handle of a work-stealing deque: push and pop on the bottom.
///
/// `Send` but deliberately not `Sync` — there is exactly one owner.
pub struct DequeWorker<T> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<Cell<()>>,
}

/// Stealer handle: clone freely and hand one to every other worker.
pub struct DequeStealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for DequeStealer<T> {
    fn clone(&self) -> Self {
        DequeStealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Build a deque with the given ring capacity and arena capacity (total
/// pushes allowed over the deque's lifetime).  Returns the unique owner
/// handle and a cloneable stealer handle.
pub fn work_deque<T: Clone>(ring: usize, arena: usize) -> (DequeWorker<T>, DequeStealer<T>) {
    let ring = ring.max(1);
    let inner = Arc::new(Inner {
        top: CachePadded(AtomicI64::new(0)),
        bottom: CachePadded(AtomicI64::new(0)),
        ring: (0..ring).map(|_| AtomicI64::new(-1)).collect(),
        arena: (0..arena).map(|_| OnceLock::new()).collect(),
        next_cell: AtomicUsize::new(0),
    });
    (
        DequeWorker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        DequeStealer { inner },
    )
}

impl<T: Clone> DequeWorker<T> {
    /// Push a task on the bottom.  Returns the task back when the ring is
    /// full or the arena is exhausted — the caller keeps the work inline.
    pub fn push(&self, task: T) -> Result<(), T> {
        let inner = &self.inner;
        // relaxed: `bottom` is only ever written by this owner thread, so
        // reading our own last store needs no ordering.
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        if b - t >= inner.ring.len() as i64 {
            return Err(task); // ring full
        }
        // relaxed: owner-only counter; the arena write it guards is
        // published by the `Release` ring-slot store below, not by this RMW.
        let cell = inner.next_cell.fetch_add(1, Ordering::Relaxed);
        if cell >= inner.arena.len() {
            return Err(task); // arena exhausted for good
        }
        inner.arena[cell]
            .set(task)
            .unwrap_or_else(|_| panic!("arena cell {cell} claimed twice"));
        // Publish the cell index, then the new bottom: both Release so a
        // stealer that observes the new bottom also observes the index and
        // the arena write before it.
        inner.slot(b).store(cell as i64, Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pop the most recently pushed task, if any (LIFO).
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        // relaxed: owner reads and rewrites its own `bottom`; the SeqCst
        // fence below is what orders the store against the `top` load.
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        inner.bottom.store(b, Ordering::Relaxed);
        // The load-bearing fence: it globally orders the `bottom` store
        // above against the `top` load below.  Without it a stealer's
        // advance of `top` can stay invisible here while our shrunken
        // `bottom` stays invisible there, and both sides take the same
        // task.  The model-check suite proves the checker notices when the
        // `cwcs_mutate_take_fence` build weakens this to `Release`.
        #[cfg(not(cwcs_mutate_take_fence))]
        fence(Ordering::SeqCst);
        #[cfg(cwcs_mutate_take_fence)]
        fence(Ordering::Release);
        // relaxed: ordered by the SeqCst fence above.
        let t = inner.top.load(Ordering::Relaxed);
        if t > b {
            // relaxed: only the owner writes `bottom`; stealers re-validate
            // through their own SeqCst fence + `top` CAS, never through
            // this restore store.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // relaxed: reading our own `Release` store from `push` (same
        // thread), or an older one — the CAS/fence protocol guarantees the
        // slot was not overwritten while still claimable.
        let cell = inner.slot(b).load(Ordering::Relaxed);
        if t == b {
            // Last task: race the stealers for it on `top`.  SeqCst on
            // success keeps the CAS in the same total order as the fences;
            // relaxed: on failure we only learn we lost the race — the
            // stale value is never used.
            let won = inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // relaxed: see the empty-path restore above.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return won.then(|| self.take(cell));
        }
        Some(self.take(cell))
    }

    /// Number of tasks currently in the deque (approximate under races).
    pub fn len(&self) -> usize {
        // relaxed: advisory snapshot — callers only use it as a heuristic
        // (donation low-water checks), never for correctness.
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining arena capacity: pushes that can still succeed.
    pub fn spare_capacity(&self) -> usize {
        // relaxed: owner-only counter read on the owner thread.
        self.inner
            .arena
            .len()
            .saturating_sub(self.inner.next_cell.load(Ordering::Relaxed))
    }

    fn take(&self, cell: i64) -> T {
        self.inner.arena[cell as usize]
            .get()
            .expect("arena cell initialised before publication")
            .clone()
    }
}

impl<T: Clone> DequeStealer<T> {
    /// Try to steal the oldest task (FIFO side).
    pub fn steal(&self) -> Steal<T> {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Pairs with the owner's pop fence: after it, this thread's `top`
        // read is ordered before the `bottom` read, so a concurrent pop
        // either sees our (later) CAS or we see its shrunken `bottom`.
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let cell = inner.slot(t).load(Ordering::Acquire);
        // SeqCst on success: the CAS must participate in the same total
        // order as the pop fence, or the owner can miss our claim and hand
        // out the task twice.  The model-check suite proves the checker
        // notices when the `cwcs_mutate_steal_cas` build weakens this.
        // relaxed: on failure the read value is discarded (Retry).
        #[cfg(not(cwcs_mutate_steal_cas))]
        let claimed = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        #[cfg(cwcs_mutate_steal_cas)]
        // relaxed: deliberately wrong — the injected mutation the
        // model-check suite must detect.
        let claimed = inner
            .top
            .compare_exchange(t, t + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if !claimed {
            return Steal::Retry;
        }
        // The CAS succeeded, so slot `t` was not overwritten before it (see
        // the module docs on ABA) and `cell` is the index published for it.
        Steal::Success(
            inner.arena[cell as usize]
                .get()
                .expect("arena cell initialised before publication")
                .clone(),
        )
    }

    /// Number of tasks currently observable in the deque.
    pub fn len(&self) -> usize {
        // relaxed: advisory snapshot for victim selection heuristics.
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_push_pop_is_lifo() {
        let (worker, _stealer) = work_deque::<u32>(8, 64);
        for v in 0..5 {
            worker.push(v).unwrap();
        }
        assert_eq!(worker.len(), 5);
        for v in (0..5).rev() {
            assert_eq!(worker.pop(), Some(v));
        }
        assert_eq!(worker.pop(), None);
        assert!(worker.is_empty());
    }

    #[test]
    fn stealer_takes_the_oldest() {
        let (worker, stealer) = work_deque::<u32>(8, 64);
        for v in 0..4 {
            worker.push(v).unwrap();
        }
        assert_eq!(stealer.steal(), Steal::Success(0));
        assert_eq!(stealer.steal(), Steal::Success(1));
        assert_eq!(worker.pop(), Some(3), "owner still pops the newest");
        assert_eq!(stealer.steal(), Steal::Success(2));
        assert_eq!(stealer.steal(), Steal::Empty);
        assert_eq!(worker.pop(), None);
    }

    #[test]
    fn ring_full_returns_the_task() {
        let (worker, _stealer) = work_deque::<u32>(2, 64);
        worker.push(1).unwrap();
        worker.push(2).unwrap();
        assert_eq!(worker.push(3), Err(3));
        assert_eq!(worker.pop(), Some(2));
        worker.push(4).unwrap();
        assert_eq!(worker.len(), 2);
    }

    #[test]
    fn arena_exhaustion_returns_the_task() {
        let (worker, stealer) = work_deque::<u32>(8, 3);
        worker.push(1).unwrap();
        worker.push(2).unwrap();
        assert_eq!(worker.pop(), Some(2));
        worker.push(3).unwrap();
        // Three lifetime pushes used up the arena, whatever was popped.
        assert_eq!(worker.push(4), Err(4));
        assert_eq!(worker.spare_capacity(), 0);
        assert_eq!(stealer.steal(), Steal::Success(1));
        assert_eq!(worker.pop(), Some(3));
    }

    #[test]
    fn ring_wraps_after_interleaved_pop_and_push() {
        let (worker, stealer) = work_deque::<u32>(4, 1024);
        let mut seen = Vec::new();
        let mut next = 0u32;
        for _ in 0..50 {
            while worker.push(next).is_ok() {
                next += 1;
            }
            seen.extend(worker.pop());
            if let Steal::Success(v) = stealer.steal() {
                seen.push(v);
            }
        }
        while let Some(v) = worker.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        let expected: Vec<u32> = (0..next).collect();
        assert_eq!(seen, expected, "every push popped-or-stolen exactly once");
    }

    #[test]
    fn stealers_clone_and_share() {
        let (worker, stealer) = work_deque::<String>(8, 8);
        worker.push("a".to_string()).unwrap();
        let other = stealer.clone();
        assert_eq!(other.steal(), Steal::Success("a".to_string()));
        assert_eq!(stealer.steal(), Steal::Empty);
    }
}
