//! # cwcs-solver — a finite-domain constraint-programming solver
//!
//! Entropy delegates the search for a cheap viable configuration to a
//! constraint-programming solver (Choco in the original Java implementation).
//! This crate is a from-scratch reimplementation of the primitives the paper
//! relies on:
//!
//! * finite integer **domains** and a **domain store** ([`domain`], [`store`]),
//! * a **propagator** interface and a fixpoint propagation loop
//!   ([`propagator`]),
//! * the **constraints** used by the placement model: linear inequalities,
//!   element, all-different, the dynamic-programming **knapsack** consistency
//!   of Trick (2001) and the **bin-packing** constraint of Shaw (2004) that
//!   Entropy uses to model per-node CPU and memory capacities
//!   ([`constraints`]),
//! * a depth-first **search** with first-fail variable ordering, configurable
//!   value ordering, **branch & bound** minimisation, a solve **timeout** and
//!   anytime behaviour (the best solution found so far is kept, exactly like
//!   Entropy keeps improving the plan until it proves optimality or hits its
//!   time limit) ([`search`]),
//! * a parallel **portfolio** that partitions the root decision across
//!   workers (disjoint frontiers), lets idle workers steal frozen subtrees
//!   over a lock-free Chase–Lev deque ([`deque`]), shares the incumbent
//!   through an atomic bound and proves optimality when the global pending
//!   counter drains ([`portfolio`]).
//!
//! The solver is deliberately small and deterministic: domains are bitsets,
//! propagation runs to fixpoint after every decision, and search state is
//! restored by trailing whole domains.  This is more than enough for the
//! placement problems of the paper (hundreds of variables whose domains are
//! node indices).
//!
//! ```
//! use cwcs_solver::{Model, VarId};
//! use cwcs_solver::constraints::AllDifferent;
//! use cwcs_solver::search::{Search, SearchConfig};
//!
//! // Three tasks, three slots, all different.
//! let mut model = Model::new();
//! let vars: Vec<VarId> = (0..3).map(|_| model.new_var(0, 2)).collect();
//! model.post(AllDifferent::new(vars.clone()));
//! let solution = Search::new(&model, SearchConfig::default()).solve().unwrap();
//! let values: Vec<u32> = vars.iter().map(|&v| solution[v]).collect();
//! let mut sorted = values.clone();
//! sorted.sort();
//! assert_eq!(sorted, vec![0, 1, 2]);
//! ```

pub mod constraints;
pub mod deque;
pub mod domain;
pub mod portfolio;
pub mod propagator;
pub mod search;
pub mod store;
pub mod sync;

pub use deque::{work_deque, DequeStealer, DequeWorker, Steal};
pub use domain::IntDomain;
pub use portfolio::{
    partition_root, PendingCounter, PortfolioConfig, PortfolioOutcome, PortfolioSearch,
    PortfolioStats, RaceStrategy, RootPartition, WorkerReport, WorkerRole,
};
pub use propagator::{Inconsistency, Propagator};
pub use search::{
    luby, Objective, RestartPolicy, Search, SearchConfig, SearchStats, SharedBound, Solution,
    SubtreeCheckpoint,
};
pub use store::{DomainStore, Model, VarId};
