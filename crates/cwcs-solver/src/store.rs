//! The constraint model and the domain store manipulated during search.
//!
//! A [`Model`] owns the initial domains and the posted propagators; a
//! [`DomainStore`] is the mutable copy of the domains that propagation and
//! search work on.  Search restores state by cloning the store at every
//! choice point, which is simple, allocation-friendly at our problem sizes,
//! and trivially correct.

use std::ops::Index;
use std::sync::Arc;

use crate::domain::IntDomain;
use crate::propagator::{Inconsistency, Propagator};

/// Index of a decision variable inside a [`Model`] / [`DomainStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// A constraint model: variables (initial domains) and propagators.
#[derive(Clone, Default)]
pub struct Model {
    domains: Vec<IntDomain>,
    names: Vec<String>,
    propagators: Vec<Arc<dyn Propagator>>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Create a variable whose domain is `[lo, hi]` (inclusive).
    pub fn new_var(&mut self, lo: u32, hi: u32) -> VarId {
        let id = VarId(self.domains.len());
        self.domains.push(IntDomain::range(lo, hi));
        self.names.push(format!("x{}", id.0));
        id
    }

    /// Create a variable with an explicit set of candidate values.
    pub fn new_var_with_values(&mut self, values: &[u32]) -> VarId {
        let id = VarId(self.domains.len());
        self.domains.push(IntDomain::from_values(values));
        self.names.push(format!("x{}", id.0));
        id
    }

    /// Create a named variable whose domain is `[lo, hi]`.
    pub fn new_named_var(&mut self, name: impl Into<String>, lo: u32, hi: u32) -> VarId {
        let id = self.new_var(lo, hi);
        self.names[id.0] = name.into();
        id
    }

    /// Post a propagator.
    pub fn post<P: Propagator + 'static>(&mut self, propagator: P) {
        self.propagators.push(Arc::new(propagator));
    }

    /// Post a propagator and return its slot, so that an incremental caller
    /// can later swap it out with [`Model::replace_propagator`].
    pub fn post_slot<P: Propagator + 'static>(&mut self, propagator: P) -> usize {
        self.propagators.push(Arc::new(propagator));
        self.propagators.len() - 1
    }

    /// Replace the propagator at `slot` (as returned by [`Model::post_slot`])
    /// in place.  This is the primitive behind model patching: a persistent
    /// model keeps its variables and swaps only the constraints whose
    /// parameters (sizes, capacities) changed since the last solve, instead
    /// of being rebuilt from scratch.  The patched model must be
    /// search-indistinguishable from a freshly built one; the lockstep suite
    /// in `cwcs-core` asserts exactly that.
    ///
    /// # Panics
    /// Panics when `slot` does not name a posted propagator.
    pub fn replace_propagator<P: Propagator + 'static>(&mut self, slot: usize, propagator: P) {
        self.propagators[slot] = Arc::new(propagator);
    }

    /// Reset a variable's initial domain to `[lo, hi]` and wipe any
    /// previous reduction.  This is the variable half of model patching: a
    /// persistent model recycles a retired slot for a newly arrived item
    /// (paired with [`Model::rename_var`]) or re-bounds every live variable
    /// when the candidate-node count changed, instead of being rebuilt.
    ///
    /// # Panics
    /// Panics when `var` does not name a variable of this model.
    pub fn reset_var(&mut self, var: VarId, lo: u32, hi: u32) {
        self.domains[var.0] = IntDomain::range(lo, hi);
    }

    /// Retire a variable: fix its initial domain to the singleton `{0}`.
    /// A retired variable stays in the model (removing it would renumber
    /// every later [`VarId`]) but can never be branched on, costs one
    /// trivially-fixed domain per store clone, and must be excluded from
    /// the propagators posted over the live variables.  Retired slots are
    /// recycled by [`Model::reset_var`] when new items arrive.
    ///
    /// # Panics
    /// Panics when `var` does not name a variable of this model.
    pub fn retire_var(&mut self, var: VarId) {
        self.domains[var.0] = IntDomain::range(0, 0);
    }

    /// Rename a variable (recycled slots take the new item's name, so
    /// debugging output never shows a stale identity).
    ///
    /// # Panics
    /// Panics when `var` does not name a variable of this model.
    pub fn rename_var(&mut self, var: VarId, name: impl Into<String>) {
        self.names[var.0] = name.into();
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of posted propagators.
    pub fn propagator_count(&self) -> usize {
        self.propagators.len()
    }

    /// Name of a variable (for debugging and statistics).
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.0]
    }

    /// Initial domain of a variable.
    pub fn initial_domain(&self, var: VarId) -> &IntDomain {
        &self.domains[var.0]
    }

    /// The propagators, shared with search.
    pub(crate) fn propagators(&self) -> &[Arc<dyn Propagator>] {
        &self.propagators
    }

    /// Build the root domain store (a copy of the initial domains).
    pub fn root_store(&self) -> DomainStore {
        DomainStore {
            domains: self.domains.clone(),
        }
    }
}

/// The mutable set of domains manipulated by propagation and search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainStore {
    domains: Vec<IntDomain>,
}

impl DomainStore {
    /// Domain of a variable.
    pub fn domain(&self, var: VarId) -> &IntDomain {
        &self.domains[var.0]
    }

    /// Number of variables in the store.
    pub fn var_count(&self) -> usize {
        self.domains.len()
    }

    /// True when every variable is fixed.
    pub fn all_fixed(&self) -> bool {
        self.domains.iter().all(|d| d.is_fixed())
    }

    /// True when the variable is fixed.
    pub fn is_fixed(&self, var: VarId) -> bool {
        self.domains[var.0].is_fixed()
    }

    /// Value of a fixed variable.
    ///
    /// # Panics
    /// Panics when the variable is not fixed.
    pub fn value(&self, var: VarId) -> u32 {
        self.domains[var.0].value()
    }

    /// Value of the variable if it is fixed, `None` otherwise.
    pub fn fixed_value(&self, var: VarId) -> Option<u32> {
        let d = &self.domains[var.0];
        if d.is_fixed() {
            Some(d.value())
        } else {
            None
        }
    }

    /// Smallest candidate value.
    pub fn min(&self, var: VarId) -> u32 {
        self.domains[var.0].min()
    }

    /// Largest candidate value.
    pub fn max(&self, var: VarId) -> u32 {
        self.domains[var.0].max()
    }

    /// True when `value` is still a candidate for `var`.
    pub fn contains(&self, var: VarId, value: u32) -> bool {
        self.domains[var.0].contains(value)
    }

    /// Remove `value` from the domain of `var`.
    ///
    /// Returns `Ok(true)` when the domain changed, `Ok(false)` when the value
    /// was already absent, and `Err(Inconsistency)` when the removal empties
    /// the domain.
    pub fn remove(&mut self, var: VarId, value: u32) -> Result<bool, Inconsistency> {
        let changed = self.domains[var.0].remove(value);
        if self.domains[var.0].is_empty() {
            return Err(Inconsistency::wipeout(var));
        }
        Ok(changed)
    }

    /// Fix `var` to `value`.
    pub fn assign(&mut self, var: VarId, value: u32) -> Result<bool, Inconsistency> {
        let changed = self.domains[var.0].assign(value);
        if self.domains[var.0].is_empty() {
            return Err(Inconsistency::wipeout(var));
        }
        Ok(changed)
    }

    /// Remove every value of `var` strictly below `bound`.
    pub fn remove_below(&mut self, var: VarId, bound: u32) -> Result<bool, Inconsistency> {
        let changed = self.domains[var.0].remove_below(bound);
        if self.domains[var.0].is_empty() {
            return Err(Inconsistency::wipeout(var));
        }
        Ok(changed)
    }

    /// Remove every value of `var` strictly above `bound`.
    pub fn remove_above(&mut self, var: VarId, bound: u32) -> Result<bool, Inconsistency> {
        let changed = self.domains[var.0].remove_above(bound);
        if self.domains[var.0].is_empty() {
            return Err(Inconsistency::wipeout(var));
        }
        Ok(changed)
    }

    /// Variables that are not fixed yet, in index order.
    pub fn unfixed_vars(&self) -> Vec<VarId> {
        (0..self.domains.len())
            .map(VarId)
            .filter(|v| !self.is_fixed(*v))
            .collect()
    }
}

impl Index<VarId> for DomainStore {
    type Output = IntDomain;
    fn index(&self, var: VarId) -> &IntDomain {
        &self.domains[var.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_creates_variables() {
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let y = m.new_named_var("host", 2, 4);
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.name(x), "x0");
        assert_eq!(m.name(y), "host");
        assert_eq!(m.initial_domain(y).values(), vec![2, 3, 4]);
    }

    #[test]
    fn store_operations() {
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let mut s = m.root_store();
        assert!(!s.all_fixed());
        assert!(s.remove(x, 3).unwrap());
        assert!(!s.contains(x, 3));
        assert!(s.assign(x, 4).unwrap());
        assert!(s.all_fixed());
        assert_eq!(s.value(x), 4);
        assert_eq!(s.fixed_value(x), Some(4));
    }

    #[test]
    fn wipeout_is_reported() {
        let mut m = Model::new();
        let x = m.new_var(1, 1);
        let mut s = m.root_store();
        let err = s.remove(x, 1).unwrap_err();
        assert_eq!(err.variable(), Some(x));
    }

    #[test]
    fn bounds_tightening() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let mut s = m.root_store();
        s.remove_below(x, 3).unwrap();
        s.remove_above(x, 7).unwrap();
        assert_eq!(s.min(x), 3);
        assert_eq!(s.max(x), 7);
        assert!(s.remove_below(x, 8).is_err());
    }

    #[test]
    fn unfixed_vars_lists_open_variables() {
        let mut m = Model::new();
        let x = m.new_var(0, 1);
        let y = m.new_var(0, 1);
        let mut s = m.root_store();
        s.assign(x, 0).unwrap();
        assert_eq!(s.unfixed_vars(), vec![y]);
    }

    #[test]
    fn retired_variables_are_fixed_and_recyclable() {
        let mut m = Model::new();
        let x = m.new_named_var("host(vm#1)", 0, 5);
        m.retire_var(x);
        let s = m.root_store();
        assert!(
            s.is_fixed(x),
            "a retired variable must never be branched on"
        );
        assert_eq!(s.value(x), 0);
        // Recycle the slot for a new item: full domain, new identity.
        m.reset_var(x, 0, 3);
        m.rename_var(x, "host(vm#9)");
        assert_eq!(m.name(x), "host(vm#9)");
        assert_eq!(m.initial_domain(x).values(), vec![0, 1, 2, 3]);
        assert_eq!(m.var_count(), 1, "recycling must not add variables");
    }

    #[test]
    fn values_variable() {
        let mut m = Model::new();
        let x = m.new_var_with_values(&[2, 4, 8]);
        let s = m.root_store();
        assert_eq!(s.domain(x).values(), vec![2, 4, 8]);
    }
}
